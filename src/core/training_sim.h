#pragma once

/// \file training_sim.h
/// Lowers a TrainingPlan into per-iteration task graphs and simulates them.
///
/// Several iterations are chained (default 3) and the metrics are read from
/// the *last* one, so steady-state effects — the overlapped optimizer's
/// parameter all-gather hiding under the next iteration's forward pass,
/// warm pipelines — emerge from the dependency structure rather than being
/// modeled analytically.

#include <iosfwd>
#include <optional>
#include <vector>

#include "core/cost_model.h"
#include "core/perturbation.h"
#include "core/plan.h"
#include "obs/self_profile.h"
#include "sim/executor.h"
#include "sim/rate_timeline.h"
#include "sim/task_graph.h"
#include "util/units.h"

namespace holmes::sim {
class SimMemo;
}  // namespace holmes::sim

namespace holmes::core {

struct IterationMetrics {
  SimTime iteration_time = 0;   ///< steady-state seconds per iteration
  double tflops_per_gpu = 0;    ///< Eq. (6) FLOPs / (time * N), in TFLOP/s
  double throughput = 0;        ///< samples (sequences) per second, aggregate

  /// Wall-span of the gradient reduce-scatter (or all-reduce, for the
  /// classic DDP strategy) in the measured iteration — Fig. 3's metric.
  SimTime grad_sync_span = 0;
  /// Split of the measured iteration's grad-sync wall time into the part
  /// hidden under forward/backward compute and the part directly extending
  /// the iteration (Table 5's overlapped-optimizer ablation metric).
  SimTime grad_sync_overlapped = 0;
  SimTime grad_sync_exposed = 0;
  /// Wall-span of the parameter all-gather (distributed optimizers only).
  SimTime param_allgather_span = 0;
  /// Wall-span of the optimizer step compute.
  SimTime optimizer_span = 0;
  /// Aggregate busy seconds of forward / backward compute across devices.
  SimTime forward_busy = 0;
  SimTime backward_busy = 0;

  std::size_t task_count = 0;   ///< simulated tasks across all iterations
};

/// Everything a run leaves behind beyond the scalar metrics: the lowered
/// task graph, its timings, and enough structure (iteration markers, the
/// rank -> compute-resource map) for the observability layer to derive
/// utilization, bubble, contention, and overlap accounting. Request it via
/// TrainingSimulator::run's `artifacts` parameter (see core/run_stats.h).
struct SimArtifacts {
  sim::TaskGraph graph;
  std::optional<sim::SimResult> result;
  /// One marker noop per simulated iteration; marker i finishes when every
  /// device's optimizer state for iteration i is final.
  std::vector<sim::TaskId> iteration_markers;
  /// Global rank -> compute resource id in `graph`.
  std::vector<sim::ResourceId> compute_resource;
  int iterations = 0;

  /// Engine self-profile of this run (holmes.self_profile.v1), populated
  /// only when an obs::SelfProfiler was active on the calling thread.
  std::optional<obs::SelfProfile> self_profile;

  /// The rate timeline the run executed under — empty unless a perturbation
  /// carried NIC degradation windows. Persisted so post-hoc consumers
  /// (timeline overlays, trace rate tracks) can chart effective-vs-nominal
  /// rates without re-lowering the fault plan.
  sim::RateTimeline rates;

  /// Steady-state observation window [first marker finish, last marker
  /// finish) — the warm-up iteration is excluded.
  SimTime window_begin() const;
  SimTime window_end() const;
};

class TrainingSimulator {
 public:
  explicit TrainingSimulator(CostModel cost = {}) : cost_(cost) {}

  /// Overrides how the executor breaks equal-ready-time ties. The default
  /// is the canonical deterministic discipline; the permuting policies are
  /// the determinism checker's probes (see sim::TieBreak and
  /// core/schedule_check.h).
  void set_executor_options(const sim::ExecutorOptions& options) {
    exec_options_ = options;
  }

  /// Shares a simulation memo (see sim::SimMemo) across runs: when a run
  /// needs no live observer, a structurally identical (graph, options) pair
  /// simulated earlier — by this simulator or any other sharing the memo —
  /// returns the cached result without re-running the executor. The caller
  /// keeps ownership; pass nullptr to detach.
  void set_memo(sim::SimMemo* memo) { memo_ = memo; }

  /// Simulates `iterations` chained training iterations of `plan` on
  /// `topo` and reports steady-state metrics from the last one.
  /// `iterations` must be >= 2 (one warm-up minimum). `perturbations`
  /// optionally slows individual devices or adds seeded compute jitter
  /// (see core/perturbation.h). `artifacts`, when non-null, receives the
  /// task graph and timings for post-hoc accounting; `observer`, when
  /// non-null, is fed scheduling events while the simulation runs (e.g.
  /// obs::RegistryRecorder).
  IterationMetrics run(const net::Topology& topo, const TrainingPlan& plan,
                       int iterations = 3,
                       const Perturbations& perturbations = {},
                       std::ostream* chrome_trace = nullptr,
                       SimArtifacts* artifacts = nullptr,
                       sim::ExecutionObserver* observer = nullptr) const;

  const CostModel& cost_model() const { return cost_; }

 private:
  CostModel cost_;
  sim::ExecutorOptions exec_options_;
  sim::SimMemo* memo_ = nullptr;
};

}  // namespace holmes::core
