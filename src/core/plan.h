#pragma once

/// \file plan.h
/// Planning: a FrameworkConfig plus a topology and a workload resolve into
/// a TrainingPlan — the complete set of scheduling decisions (groups,
/// stage partition, per-stage NICs, transport fallback, DP sync strategy)
/// the training simulator then executes.

#include <vector>

#include "core/framework.h"
#include "model/gpt_zoo.h"
#include "net/topology.h"
#include "parallel/group_builder.h"
#include "pipeline/partition.h"

namespace holmes::core {

struct TrainingPlan {
  FrameworkConfig framework;
  parallel::ParallelConfig degrees;
  parallel::ParallelGroups groups;
  /// Layers per *virtual* stage: size p for GPipe/1F1B, p * chunks for the
  /// interleaved schedule (virtual stage v runs on physical stage v % p).
  pipeline::StagePartition partition;
  std::vector<net::NicType> stage_nics;    ///< effective NIC per physical stage
  bool ethernet_fallback = false;          ///< all inter-node comm on Ethernet
  model::ParameterGroup workload;
  std::int64_t micro_batches = 0;          ///< per pipeline replica

  /// Model chunks per device (>1 only for the interleaved schedule).
  int chunks() const { return framework.effective_chunks(); }
  /// Virtual pipeline depth p * chunks.
  int virtual_stages() const { return degrees.pipeline * chunks(); }
};

class Planner {
 public:
  explicit Planner(FrameworkConfig config) : config_(std::move(config)) {}

  /// Resolves every scheduling decision for `workload` on `topo`. Throws
  /// holmes::ConfigError when the workload cannot be laid out (degrees do
  /// not divide the world, batch not divisible, fewer layers than stages).
  TrainingPlan plan(const net::Topology& topo,
                    const model::ParameterGroup& workload) const;

  const FrameworkConfig& framework() const { return config_; }

 private:
  FrameworkConfig config_;
};

/// True when the job spans multiple clusters (no shared high-speed switch)
/// — the condition under which a NIC-oblivious stack downgrades to
/// Ethernet.
bool is_heterogeneous_job(const net::Topology& topo);

}  // namespace holmes::core
