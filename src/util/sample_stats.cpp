#include "util/sample_stats.h"

#include <algorithm>

namespace holmes {

SampleStats summarize_samples(std::vector<double> samples) {
  SampleStats stats;
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  stats.count = samples.size();
  stats.min = samples.front();
  stats.max = samples.back();
  const std::size_t mid = samples.size() / 2;
  stats.median = samples.size() % 2 == 1
                     ? samples[mid]
                     : (samples[mid - 1] + samples[mid]) / 2.0;
  double sum = 0;
  for (double s : samples) sum += s;
  stats.mean = sum / static_cast<double>(samples.size());
  return stats;
}

}  // namespace holmes
