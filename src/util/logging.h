#pragma once

/// \file logging.h
/// Minimal leveled logger.
///
/// Benches and examples keep stdout for their tabular output, so the logger
/// writes to stderr. The level is process-global and defaults to Warning so
/// that library internals stay quiet unless a caller opts in.

#include <sstream>
#include <string>

namespace holmes {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets the process-global log threshold. Not thread-safe with concurrent
/// logging by design (set it once at startup).
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {

void log_line(LogLevel level, const std::string& message);

/// Stream-style log statement collector; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace holmes

#define HOLMES_LOG(level)                                      \
  if (static_cast<int>(::holmes::LogLevel::level) <            \
      static_cast<int>(::holmes::log_level())) {               \
  } else                                                       \
    ::holmes::detail::LogMessage(::holmes::LogLevel::level)
