#pragma once

/// \file json_diff.h
/// Structural comparison of two parsed JSON documents.
///
/// Built for regression-checking the stable schemas this repo emits
/// (holmes.run_summary.v1, holmes.critical_path.v1, bench JSON): walk both
/// documents in parallel, pair up numeric leaves, and report each pair's
/// relative change plus any structure present on only one side.
/// `holmes_cli diff` turns the result into a report and a threshold exit
/// code for CI.
///
/// Array elements are aligned by index, except arrays of objects that
/// carry an identifying member ("name", "bucket", "rule", "id", or
/// "label"): those align by that member's value, so a reordering of e.g.
/// attribution buckets between two runs diffs the matching buckets instead
/// of whatever happens to share a position.

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "util/json.h"

namespace holmes {

/// One numeric leaf present in both documents.
struct JsonDelta {
  std::string path;  ///< e.g. "buckets[comm/Ethernet/pp p2p].seconds"
  double before = 0;
  double after = 0;

  double abs_change() const { return after - before; }
  /// Relative change against the larger magnitude; exact zero when the
  /// values are equal (including 0 -> 0).
  double rel_change() const {
    if (after == before) return 0;
    const double scale = std::max(std::fabs(before), std::fabs(after));
    return (after - before) / scale;
  }
};

struct JsonDiffResult {
  std::vector<JsonDelta> deltas;       ///< descending |rel_change|
  std::vector<std::string> added;      ///< paths only in the second doc
  std::vector<std::string> removed;    ///< paths only in the first doc
  std::vector<std::string> changed;    ///< non-numeric leaves that differ
  std::size_t compared = 0;            ///< numeric leaves present in both

  /// Largest |rel_change| among deltas whose absolute change exceeds
  /// `atol` (guards against noise on near-zero values).
  double max_rel_change(double atol = 1e-12) const;

  /// True when any delta regresses beyond `rel_threshold` (after the
  /// `atol` guard) or the documents disagree structurally.
  bool over_threshold(double rel_threshold, double atol = 1e-12) const;
};

/// Diffs `before` against `after`. Never throws on shape mismatches — a
/// kind change at a path is reported under `changed`.
JsonDiffResult diff_json(const JsonValue& before, const JsonValue& after);

}  // namespace holmes
