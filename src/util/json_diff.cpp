#include "util/json_diff.h"

#include <algorithm>
#include <utility>

namespace holmes {

namespace {

/// Identifying members tried, in order, to align arrays of objects.
constexpr const char* kIdKeys[] = {"name", "bucket", "rule", "id", "label"};

/// The identifying string of an array element, or "" when it has none.
std::string element_id(const JsonValue& value) {
  if (!value.is_object()) return {};
  for (const char* key : kIdKeys) {
    const JsonValue* member = value.find(key);
    if (member != nullptr && member->is_string()) return member->as_string();
  }
  return {};
}

const char* kind_name(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

class Differ {
 public:
  explicit Differ(JsonDiffResult& out) : out_(out) {}

  void walk(const std::string& path, const JsonValue& a, const JsonValue& b) {
    if (a.kind() != b.kind()) {
      out_.changed.push_back(path + " (" + kind_name(a.kind()) + " -> " +
                             kind_name(b.kind()) + ")");
      return;
    }
    switch (a.kind()) {
      case JsonValue::Kind::kNumber:
        // Equal leaves are recorded too; callers filter by change.
        ++out_.compared;
        out_.deltas.push_back({path, a.as_number(), b.as_number()});
        return;
      case JsonValue::Kind::kString:
        if (a.as_string() != b.as_string()) {
          out_.changed.push_back(path + " (\"" + a.as_string() + "\" -> \"" +
                                 b.as_string() + "\")");
        }
        return;
      case JsonValue::Kind::kBool:
        if (a.as_bool() != b.as_bool()) {
          out_.changed.push_back(path + " (bool changed)");
        }
        return;
      case JsonValue::Kind::kNull:
        return;
      case JsonValue::Kind::kObject:
        walk_object(path, a, b);
        return;
      case JsonValue::Kind::kArray:
        walk_array(path, a, b);
        return;
    }
  }

 private:
  void walk_object(const std::string& path, const JsonValue& a,
                   const JsonValue& b) {
    const std::string prefix = path.empty() ? "" : path + ".";
    for (const auto& [key, value] : a.as_object()) {
      const JsonValue* other = b.find(key);
      if (other == nullptr) {
        out_.removed.push_back(prefix + key);
      } else {
        walk(prefix + key, value, *other);
      }
    }
    for (const auto& [key, value] : b.as_object()) {
      if (a.find(key) == nullptr) out_.added.push_back(prefix + key);
    }
  }

  void walk_array(const std::string& path, const JsonValue& a,
                  const JsonValue& b) {
    const auto& av = a.as_array();
    const auto& bv = b.as_array();
    // Align by identifying member when every element on both sides has one
    // and ids are unique per side; otherwise fall back to index pairing.
    if (aligns_by_id(av) && aligns_by_id(bv)) {
      for (const JsonValue& ea : av) {
        const std::string id = element_id(ea);
        const JsonValue* eb = find_by_id(bv, id);
        const std::string sub = path + "[" + id + "]";
        if (eb == nullptr) {
          out_.removed.push_back(sub);
        } else {
          walk(sub, ea, *eb);
        }
      }
      for (const JsonValue& eb : bv) {
        if (find_by_id(av, element_id(eb)) == nullptr) {
          out_.added.push_back(path + "[" + element_id(eb) + "]");
        }
      }
      return;
    }
    const std::size_t common = std::min(av.size(), bv.size());
    for (std::size_t i = 0; i < common; ++i) {
      walk(path + "[" + std::to_string(i) + "]", av[i], bv[i]);
    }
    for (std::size_t i = common; i < av.size(); ++i) {
      out_.removed.push_back(path + "[" + std::to_string(i) + "]");
    }
    for (std::size_t i = common; i < bv.size(); ++i) {
      out_.added.push_back(path + "[" + std::to_string(i) + "]");
    }
  }

  static bool aligns_by_id(const std::vector<JsonValue>& values) {
    if (values.empty()) return true;
    std::vector<std::string> ids;
    ids.reserve(values.size());
    for (const JsonValue& value : values) {
      const std::string id = element_id(value);
      if (id.empty()) return false;
      ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    return std::adjacent_find(ids.begin(), ids.end()) == ids.end();
  }

  static const JsonValue* find_by_id(const std::vector<JsonValue>& values,
                                     const std::string& id) {
    for (const JsonValue& value : values) {
      if (element_id(value) == id) return &value;
    }
    return nullptr;
  }

  JsonDiffResult& out_;
};

}  // namespace

double JsonDiffResult::max_rel_change(double atol) const {
  double worst = 0;
  for (const JsonDelta& delta : deltas) {
    if (std::fabs(delta.abs_change()) <= atol) continue;
    worst = std::max(worst, std::fabs(delta.rel_change()));
  }
  return worst;
}

bool JsonDiffResult::over_threshold(double rel_threshold, double atol) const {
  if (!added.empty() || !removed.empty() || !changed.empty()) return true;
  return max_rel_change(atol) > rel_threshold;
}

JsonDiffResult diff_json(const JsonValue& before, const JsonValue& after) {
  JsonDiffResult result;
  Differ differ(result);
  differ.walk("", before, after);
  std::stable_sort(result.deltas.begin(), result.deltas.end(),
                   [](const JsonDelta& a, const JsonDelta& b) {
                     return std::fabs(a.rel_change()) >
                            std::fabs(b.rel_change());
                   });
  return result;
}

}  // namespace holmes
