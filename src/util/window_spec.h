#pragma once

/// \file window_spec.h
/// Shared parser for the `--window BEGIN:END` CLI option.
///
/// `stats`, `explain`, and `timeline` all accept a time window; this helper
/// gives them one grammar and one set of error messages. The spec is
/// "BEGIN:END" in seconds; END may be empty ("2.5:") meaning "to the end of
/// the run", encoded as -1 so callers clip against their own horizon.

#include <string>

namespace holmes {

struct WindowSpec {
  double begin = 0;
  double end = -1;  ///< -1 = unbounded; callers clip to their horizon.
};

/// Parses "BEGIN:END" (seconds; END may be empty for "to the end").
/// Throws holmes::ConfigError on a missing colon, non-numeric bounds, or an
/// empty window (begin >= end with a bounded end).
WindowSpec parse_window_spec(const std::string& spec);

}  // namespace holmes
