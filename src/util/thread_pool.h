#pragma once

/// \file thread_pool.h
/// Fixed-size worker pool used to fan independent simulation scenarios out
/// across cores (each scenario's DES run is single-threaded and isolated, so
/// scenario-level parallelism is embarrassingly parallel).

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace holmes {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future carries its result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, count) across the pool and waits for all of
  /// them; rethrows the first exception encountered.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace holmes
