#pragma once

/// \file build_info.h
/// The environment fingerprint stamped into perf trajectories.
///
/// A bench number is meaningless without knowing what produced it: the
/// `holmes.bench_suite.v1` document (and `holmes_cli --version`) records the
/// git commit, compiler, flags and build type captured at configure time plus
/// the host captured at run time, so a baseline diffed against a run from a
/// different machine or build flavor is visibly apples-to-oranges.

#include <iosfwd>
#include <string>

namespace holmes {

struct BuildInfo {
  std::string commit;      ///< short git commit at configure time ("unknown" outside git)
  std::string compiler;    ///< e.g. "GNU 13.2.0"
  std::string flags;       ///< CMAKE_CXX_FLAGS + per-config flags
  std::string build_type;  ///< e.g. "RelWithDebInfo"
  std::string host;        ///< uname nodename (empty where unsupported)
  std::string os;          ///< uname sysname + release
};

/// The fingerprint of this binary (configure-time macros + runtime uname).
BuildInfo current_build_info();

/// One-line human rendering for `holmes_cli --version`.
std::string fingerprint_line(const BuildInfo& info);

/// Writes the fingerprint JSON object (fixed key order, no trailing
/// newline): {"commit":…,"compiler":…,"flags":…,"build_type":…,"host":…,"os":…}
void write_build_info_json(std::ostream& out, const BuildInfo& info);

}  // namespace holmes
