#pragma once

/// \file error.h
/// Error handling primitives for the Holmes library.
///
/// Following the C++ Core Guidelines (E.2, E.14) we report programming and
/// configuration errors with exceptions derived from a single library-wide
/// base type, and use CHECK-style macros for internal invariants so that a
/// violated precondition carries its source location.

#include <source_location>
#include <stdexcept>
#include <string>

namespace holmes {

/// Base class of every exception thrown by the Holmes library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a user-supplied configuration is inconsistent
/// (e.g. t*p*d != N, zero-layer stage, unknown NIC name).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

/// Thrown when an internal invariant is violated. Seeing this exception
/// always indicates a bug in the library, never bad user input.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error("internal error: " + what) {}
};

namespace detail {

[[noreturn]] void throw_check_failure(const char* expr, const std::string& msg,
                                      std::source_location loc);

}  // namespace detail

}  // namespace holmes

/// Internal invariant check. Throws holmes::InternalError with source
/// location when `expr` is false. Always on (these checks are cheap relative
/// to the simulations they guard).
#define HOLMES_CHECK(expr)                                                  \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::holmes::detail::throw_check_failure(#expr, "",                      \
                                            std::source_location::current()); \
    }                                                                       \
  } while (false)

/// Invariant check with an explanatory message (any streamable expression
/// already converted to std::string by the caller).
#define HOLMES_CHECK_MSG(expr, msg)                                         \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::holmes::detail::throw_check_failure(#expr, (msg),                   \
                                            std::source_location::current()); \
    }                                                                       \
  } while (false)
