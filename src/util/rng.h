#pragma once

/// \file rng.h
/// Deterministic random number generation.
///
/// The simulator itself is deterministic; randomness is only used by tests
/// (property sweeps, fuzzed configurations) and synthetic workload
/// generators. We provide a small, fast xoshiro256** engine with an explicit
/// seed so every run is reproducible, per DESIGN.md's determinism rule.

#include <cstdint>
#include <limits>

namespace holmes {

/// SplitMix64 step: advances `x` by the golden-ratio increment and returns
/// the finalized mix. Stateless (pure function of the input), well
/// avalanched, and cheap — the simulator's tie-permutation hooks use it to
/// derive a deterministic ordering key from (seed ^ id) without carrying an
/// engine around.
std::uint64_t mix64(std::uint64_t x);

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Satisfies UniformRandomBitGenerator so it can drive <random>
/// distributions, but also offers convenience helpers used by tests.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initialises the state from a single seed via SplitMix64, which
  /// guarantees a well-mixed nonzero state for any seed value.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli draw with probability `p` of returning true.
  bool chance(double p);

 private:
  std::uint64_t state_[4];
};

}  // namespace holmes
