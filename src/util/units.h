#pragma once

/// \file units.h
/// Unit helpers shared across the library.
///
/// Simulated time is a plain `double` in seconds (SimTime); byte counts are
/// `std::int64_t`. Helper constructors make call-sites read like the paper's
/// prose ("200 Gbps NIC", "80 GiB of memory") and keep unit conversions in
/// one place.

#include <cstdint>
#include <string>

namespace holmes {

/// Simulated time in seconds.
using SimTime = double;

/// Byte count. Signed so that subtraction is safe in intermediate math.
using Bytes = std::int64_t;

namespace units {

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

inline constexpr Bytes KiB(double n) { return static_cast<Bytes>(n * 1024.0); }
inline constexpr Bytes MiB(double n) { return static_cast<Bytes>(n * 1024.0 * 1024.0); }
inline constexpr Bytes GiB(double n) { return static_cast<Bytes>(n * 1024.0 * 1024.0 * 1024.0); }

/// Converts a link speed quoted in Gbit/s (the unit NIC datasheets and the
/// paper use) to bytes/second.
inline constexpr double gbps_to_bytes_per_sec(double gbps) {
  return gbps * 1e9 / 8.0;
}

/// Converts bytes/second back to Gbit/s for reporting.
inline constexpr double bytes_per_sec_to_gbps(double bps) {
  return bps * 8.0 / 1e9;
}

inline constexpr SimTime microseconds(double us) { return us * 1e-6; }
inline constexpr SimTime milliseconds(double ms) { return ms * 1e-3; }

}  // namespace units

/// Human-readable byte count, e.g. "3.4 GiB". Used in log and table output.
std::string format_bytes(Bytes bytes);

/// Human-readable duration, e.g. "231.4 ms". Used in log and table output.
std::string format_time(SimTime seconds);

}  // namespace holmes
