#pragma once

/// \file json.h
/// Minimal JSON emission and parsing helpers.
///
/// Emission is shared by the Chrome-trace writer and the observability
/// summary exporters; parsing exists for the tools that *consume* our own
/// stable schemas back (`holmes_cli diff` comparing two run summaries, the
/// trace-validity tests). The parser handles exactly the JSON subset those
/// writers produce — objects, arrays, strings with the escapes json_escape
/// emits, numbers, booleans, null — and throws holmes::ConfigError on
/// malformed input. It is not a general-purpose JSON library.

#include <string>
#include <utility>
#include <vector>

#include "util/units.h"

namespace holmes {

/// Escapes a string for inclusion inside a JSON string literal (quotes,
/// backslashes, ASCII control characters).
std::string json_escape(const std::string& s);

/// Formats a double as a JSON number: finite values via "%.12g" (stable
/// across runs, round-trips the precisions we care about), non-finite
/// values as 0 (JSON has no Inf/NaN literals).
std::string json_number(double value);

/// A parsed JSON value. Objects keep their keys in *document order* so a
/// re-serialization or diff walks fields the way the writer emitted them.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; each throws ConfigError when the kind mismatches.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::vector<std::pair<std::string, JsonValue>>& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;
  /// Object member lookup; throws ConfigError when absent.
  const JsonValue& at(const std::string& key) const;

  static JsonValue null();
  static JsonValue boolean(bool b);
  static JsonValue number(double n);
  static JsonValue string(std::string s);
  static JsonValue array(std::vector<JsonValue> items);
  static JsonValue object(std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one JSON document (throws holmes::ConfigError on syntax errors or
/// trailing garbage).
JsonValue json_parse(const std::string& text);

/// Serializes a value back to compact JSON: object keys in document order,
/// numbers via json_number, strings via json_escape — so parse + serialize
/// of our own stable schemas is itself stable. Used by `holmes_cli bench`
/// to fold per-bench documents into the trajectory.
std::string json_serialize(const JsonValue& value);

}  // namespace holmes
