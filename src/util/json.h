#pragma once

/// \file json.h
/// Minimal JSON emission helpers shared by the Chrome-trace writer and the
/// observability summary exporter. The library never *parses* JSON — it
/// only produces it for external tools (Perfetto, plotting pipelines) — so
/// a tiny escape/format surface is all that is needed.

#include <string>

#include "util/units.h"

namespace holmes {

/// Escapes a string for inclusion inside a JSON string literal (quotes,
/// backslashes, ASCII control characters).
std::string json_escape(const std::string& s);

/// Formats a double as a JSON number: finite values via "%.12g" (stable
/// across runs, round-trips the precisions we care about), non-finite
/// values as 0 (JSON has no Inf/NaN literals).
std::string json_number(double value);

}  // namespace holmes
