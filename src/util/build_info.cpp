#include "util/build_info.h"

#include <ostream>
#include <sstream>

#include "util/build_info_gen.h"
#include "util/json.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

namespace holmes {

BuildInfo current_build_info() {
  BuildInfo info;
  info.commit = HOLMES_BUILD_GIT_COMMIT;
  info.compiler = HOLMES_BUILD_COMPILER;
  info.flags = HOLMES_BUILD_FLAGS;
  info.build_type = HOLMES_BUILD_TYPE;
#if defined(__unix__) || defined(__APPLE__)
  utsname un{};
  if (uname(&un) == 0) {
    info.host = un.nodename;
    info.os = std::string(un.sysname) + " " + un.release;
  }
#endif
  return info;
}

std::string fingerprint_line(const BuildInfo& info) {
  std::ostringstream out;
  out << "commit " << info.commit << " · " << info.compiler << " · "
      << info.build_type;
  if (!info.flags.empty()) out << " [" << info.flags << "]";
  if (!info.host.empty()) out << " · " << info.host;
  return out.str();
}

void write_build_info_json(std::ostream& out, const BuildInfo& info) {
  out << "{\"commit\":\"" << json_escape(info.commit) << "\",\"compiler\":\""
      << json_escape(info.compiler) << "\",\"flags\":\""
      << json_escape(info.flags) << "\",\"build_type\":\""
      << json_escape(info.build_type) << "\",\"host\":\""
      << json_escape(info.host) << "\",\"os\":\"" << json_escape(info.os)
      << "\"}";
}

}  // namespace holmes
