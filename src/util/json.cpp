#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.h"

namespace holmes {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw ConfigError("JSON value is not a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) throw ConfigError("JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw ConfigError("JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) throw ConfigError("JSON value is not an array");
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object()
    const {
  if (kind_ != Kind::kObject) throw ConfigError("JSON value is not an object");
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw ConfigError("JSON object has no member '" + key + "'");
  return *v;
}

JsonValue JsonValue::null() { return JsonValue{}; }

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

/// Recursive-descent parser over the writer's JSON subset.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ConfigError("JSON parse error at offset " + std::to_string(pos_) +
                      ": " + why);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::string(literal).size();
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_whitespace();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue::string(parse_string());
    if (consume_literal("true")) return JsonValue::boolean(true);
    if (consume_literal("false")) return JsonValue::boolean(false);
    if (consume_literal("null")) return JsonValue::null();
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::object(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return JsonValue::object(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_whitespace();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return JsonValue::array(std::move(items));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape digit");
          }
          // The writer only emits \u00xx for control characters; decode the
          // Latin-1 range and refuse anything needing real UTF-16 handling.
          if (code > 0xFF) fail("\\u escape above U+00FF is unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape sequence");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool any_digit = false;
    auto digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
        any_digit = true;
      }
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      digits();
    }
    if (!any_digit) fail("invalid number");
    const std::string token = text_.substr(start, pos_ - start);
    return JsonValue::number(std::strtod(token.c_str(), nullptr));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

namespace {

void serialize_to(std::string& out, const JsonValue& value) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      out += "null";
      return;
    case JsonValue::Kind::kBool:
      out += value.as_bool() ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      out += json_number(value.as_number());
      return;
    case JsonValue::Kind::kString:
      out += '"';
      out += json_escape(value.as_string());
      out += '"';
      return;
    case JsonValue::Kind::kArray: {
      out += '[';
      const auto& items = value.as_array();
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ',';
        serialize_to(out, items[i]);
      }
      out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      out += '{';
      const auto& members = value.as_object();
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out += ',';
        out += '"';
        out += json_escape(members[i].first);
        out += "\":";
        serialize_to(out, members[i].second);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

std::string json_serialize(const JsonValue& value) {
  std::string out;
  serialize_to(out, value);
  return out;
}

}  // namespace holmes
