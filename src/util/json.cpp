#include "util/json.h"

#include <cmath>
#include <cstdio>

namespace holmes {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

}  // namespace holmes
