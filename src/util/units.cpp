#include "util/units.h"

#include <array>
#include <cmath>
#include <cstdio>

namespace holmes {

std::string format_bytes(Bytes bytes) {
  static constexpr std::array<const char*, 5> suffix = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t i = 0;
  while (std::fabs(value) >= 1024.0 && i + 1 < suffix.size()) {
    value /= 1024.0;
    ++i;
  }
  char buf[64];
  if (i == 0) {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, suffix[i]);
  }
  return buf;
}

std::string format_time(SimTime seconds) {
  char buf[64];
  const double abs = std::fabs(seconds);
  if (abs >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (abs >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else if (abs >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f ns", seconds * 1e9);
  }
  return buf;
}

}  // namespace holmes
