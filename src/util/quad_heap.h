#pragma once

/// \file quad_heap.h
/// 4-ary array heap: the DES engine's priority queue.
///
/// A d-ary heap with d=4 halves the tree depth of a binary heap, trading
/// (cheap, branch-predictable) extra sibling comparisons per level for
/// (expensive) cache misses on the path — the classic win for small POD
/// entries like the executor's ready records and the event queue's event
/// headers. The root lives at index 0; children of i are 4i+1 .. 4i+4.
///
/// `Before(a, b)` returns true when `a` must pop before `b`. Elements are
/// moved with plain assignment, so keep them trivially copyable.

#include <cstddef>
#include <utility>
#include <vector>

namespace holmes {

template <typename T, typename Before>
class QuadHeap {
 public:
  QuadHeap() = default;
  explicit QuadHeap(Before before) : before_(before) {}

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  void reserve(std::size_t n) { items_.reserve(n); }
  void clear() { items_.clear(); }

  /// The element that pops next. Requires !empty().
  const T& top() const { return items_.front(); }

  void push(T item) {
    std::size_t i = items_.size();
    items_.push_back(item);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!before_(items_[i], items_[parent])) break;
      std::swap(items_[i], items_[parent]);
      i = parent;
    }
  }

  void pop() {
    const std::size_t n = items_.size() - 1;
    items_[0] = items_[n];
    items_.pop_back();
    if (n == 0) return;
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      // Best-of-children selection is written as conditional moves, not
      // branches: each comparison outcome is data-dependent and effectively
      // random, so a branchy scan pays a pipeline flush per level. With an
      // integer-comparable T this loop compiles branch-free.
      std::size_t best = first;
      T best_item = items_[first];
      for (std::size_t c = first + 1; c < last; ++c) {
        const bool sooner = before_(items_[c], best_item);
        best_item = sooner ? items_[c] : best_item;
        best = sooner ? c : best;
      }
      if (!before_(best_item, items_[i])) break;
      items_[best] = items_[i];
      items_[i] = best_item;
      i = best;
    }
  }

 private:
  std::vector<T> items_;
  Before before_{};
};

}  // namespace holmes
