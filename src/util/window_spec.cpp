#include "util/window_spec.h"

#include <exception>

#include "util/error.h"

namespace holmes {

WindowSpec parse_window_spec(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) {
    throw ConfigError("--window expects BEGIN:END seconds, got '" + spec +
                      "'");
  }
  WindowSpec window;
  try {
    window.begin = std::stod(spec.substr(0, colon));
    const std::string end = spec.substr(colon + 1);
    window.end = end.empty() ? -1 : std::stod(end);
  } catch (const std::exception&) {
    throw ConfigError("--window expects BEGIN:END seconds, got '" + spec +
                      "'");
  }
  if (window.end >= 0 && window.begin >= window.end) {
    throw ConfigError("--window is empty: got '" + spec +
                      "' (need BEGIN < END)");
  }
  return window;
}

}  // namespace holmes
