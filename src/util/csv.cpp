#include "util/csv.h"

#include <cstdio>

namespace holmes {

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << escape(cells[i]);
  }
  *out_ << '\n';
}

std::string CsvWriter::to_cell(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace holmes
