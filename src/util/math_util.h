#pragma once

/// \file math_util.h
/// Small integer/float helpers used throughout the scheduling code.

#include <cmath>
#include <cstdint>

#include "util/error.h"

namespace holmes {

/// Ceiling division for non-negative integers.
inline constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// True when |a - b| <= tol * max(1, |a|, |b|). Used by numeric tests on
/// collective results and optimizer math.
inline bool approx_equal(double a, double b, double tol = 1e-9) {
  const double scale = std::fmax(1.0, std::fmax(std::fabs(a), std::fabs(b)));
  return std::fabs(a - b) <= tol * scale;
}

/// Largest power of two <= n (n >= 1).
inline constexpr std::int64_t floor_pow2(std::int64_t n) {
  std::int64_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

/// True if n is a power of two (n >= 1).
inline constexpr bool is_pow2(std::int64_t n) {
  return n >= 1 && (n & (n - 1)) == 0;
}

}  // namespace holmes
