#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "util/error.h"

namespace holmes {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  HOLMES_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  HOLMES_CHECK_MSG(cells.size() == headers_.size(),
                   "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TextTable::num(std::int64_t value) {
  return std::to_string(value);
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_row(os, headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

void TextTable::print() const { std::cout << to_string(); }

}  // namespace holmes
