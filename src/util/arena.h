#pragma once

/// \file arena.h
/// Monotonic arena allocator for hot-path simulation state.
///
/// The DES engine allocates many small, identically-scoped objects per run
/// (event callback contexts, scratch records) whose lifetimes all end
/// together when the run finishes. A monotonic arena turns each of those
/// heap allocations into a pointer bump: allocate() never frees, and
/// reset() recycles everything at once. After a reset the arena keeps one
/// consolidated block sized to the high-water mark, so a steady-state
/// workload (e.g. the scenario runner simulating thousands of graphs)
/// performs zero allocator calls after its first run.
///
/// The arena does NOT run destructors — callers either place only
/// trivially destructible objects or arrange destruction themselves (see
/// sim::EventQueue, which keeps a destructor side-list for the rare
/// non-trivial callback). Not thread-safe; use one arena per thread
/// (ScenarioRunner workers each own their simulation's arenas by
/// construction).

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace holmes {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes);
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// Valid until reset() or destruction.
  void* allocate(std::size_t bytes, std::size_t align);

  /// Constructs a T in arena storage. The destructor will never run:
  /// restricted to trivially destructible types.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::create never runs destructors");
    void* p = allocate(sizeof(T), alignof(T));
    return ::new (p) T(std::forward<Args>(args)...);
  }

  /// Recycles all storage. Consolidates multiple blocks into one block
  /// covering the high-water mark, so subsequent identical workloads
  /// allocate no new memory.
  void reset();

  /// Bytes handed out since construction or the last reset().
  std::size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total capacity currently held (survives reset()).
  std::size_t bytes_reserved() const { return bytes_reserved_; }
  /// Blocks currently held.
  std::size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  /// Appends a block of at least `min_bytes` and makes it current.
  void grow(std::size_t min_bytes);

  std::vector<Block> blocks_;
  std::size_t block_bytes_;
  std::size_t current_ = 0;  ///< index of the block being bumped
  std::size_t cursor_ = 0;   ///< bump offset within the current block
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace holmes
