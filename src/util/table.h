#pragma once

/// \file table.h
/// Fixed-width console table used by every bench binary to print paper-style
/// tables (Table 1, 3, 4, 5) with aligned columns.

#include <cstddef>
#include <string>
#include <vector>

namespace holmes {

/// Accumulates rows of string cells and renders them with each column padded
/// to its widest cell. Numeric cells are right-aligned, text left-aligned
/// (the printer decides per column based on its header unless overridden).
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a data row. The row must have exactly as many cells as there
  /// are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats a double with `precision` fraction digits.
  static std::string num(double value, int precision = 2);

  /// Convenience: formats an integer.
  static std::string num(std::int64_t value);

  /// Renders the table, including a header separator line.
  std::string to_string() const;

  /// Renders to stdout.
  void print() const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace holmes
