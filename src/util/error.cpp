#include "util/error.h"

#include <sstream>

namespace holmes::detail {

void throw_check_failure(const char* expr, const std::string& msg,
                         std::source_location loc) {
  std::ostringstream os;
  os << "CHECK failed: " << expr;
  if (!msg.empty()) os << " (" << msg << ")";
  os << " at " << loc.file_name() << ":" << loc.line() << " in "
     << loc.function_name();
  throw InternalError(os.str());
}

}  // namespace holmes::detail
