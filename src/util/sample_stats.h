#pragma once

/// \file sample_stats.h
/// Order statistics over a small set of repeated measurements.
///
/// The bench harness reports min/median/spread over `--repeat N` wall-time
/// samples instead of a single unstable reading; this is the shared math
/// (bench/bench_json.h, the micro-bench bridge, `holmes_cli bench`).

#include <cstddef>
#include <vector>

namespace holmes {

struct SampleStats {
  std::size_t count = 0;
  double min = 0;
  double median = 0;  ///< even counts average the two middle samples
  double max = 0;
  double mean = 0;

  /// max - min: the sample noise band the trajectory stores alongside the
  /// central estimates (a wide spread flags an untrustworthy median).
  double spread() const { return max - min; }
};

/// Summarizes `samples` (order irrelevant). All-zero stats when empty.
SampleStats summarize_samples(std::vector<double> samples);

}  // namespace holmes
