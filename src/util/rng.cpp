#include "util/rng.h"

#include "util/error.h"

namespace holmes {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

std::uint64_t mix64(std::uint64_t x) {
  return splitmix64(x);
}

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  HOLMES_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range requested
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::uniform01() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  HOLMES_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) { return uniform01() < p; }

}  // namespace holmes
