#pragma once

/// \file csv.h
/// CSV writer used by benches to dump machine-readable results next to the
/// human-readable tables (so plots can be regenerated from the same run).

#include <ostream>
#include <string>
#include <vector>

namespace holmes {

/// Streams rows in RFC-4180 style (fields containing commas, quotes, or
/// newlines are quoted; embedded quotes doubled).
class CsvWriter {
 public:
  /// The writer borrows the stream; the caller keeps it alive.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes one row. Vector form.
  void write_row(const std::vector<std::string>& cells);

  /// Writes one row. Variadic convenience: every argument must be
  /// convertible to std::string via to_cell().
  template <typename... Ts>
  void row(const Ts&... cells) {
    write_row({to_cell(cells)...});
  }

  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(double v);
  static std::string to_cell(int v) { return std::to_string(v); }
  static std::string to_cell(long v) { return std::to_string(v); }
  static std::string to_cell(long long v) { return std::to_string(v); }
  static std::string to_cell(unsigned v) { return std::to_string(v); }
  static std::string to_cell(std::size_t v) { return std::to_string(v); }

 private:
  static std::string escape(const std::string& field);
  std::ostream* out_;
};

}  // namespace holmes
