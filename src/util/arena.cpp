#include "util/arena.h"

#include <algorithm>
#include <cstdint>

// Header-only hooks: no-ops unless an obs::SelfProfiler is active on this
// thread, and no link dependency on holmes_obs.
#include "obs/self_profile.h"
#include "util/error.h"

namespace holmes {

Arena::Arena(std::size_t block_bytes)
    : block_bytes_(std::max<std::size_t>(block_bytes, 64)) {}

void Arena::grow(std::size_t min_bytes) {
  // Move past any remaining blocks from before the last reset() before
  // allocating fresh ones.
  while (current_ + 1 < blocks_.size()) {
    ++current_;
    cursor_ = 0;
    if (blocks_[current_].size >= min_bytes) return;
  }
  const std::size_t size = std::max(min_bytes, block_bytes_);
  blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
  bytes_reserved_ += size;
  current_ = blocks_.size() - 1;
  cursor_ = 0;
  obs::self_profile::count(&obs::SelfProfileCounters::arena_blocks);
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  HOLMES_CHECK_MSG(align != 0 && (align & (align - 1)) == 0,
                   "arena alignment must be a power of two");
  if (bytes == 0) bytes = 1;
  if (blocks_.empty()) grow(bytes + align);
  for (;;) {
    Block& block = blocks_[current_];
    // Align the actual address, not the cursor: operator new[] only
    // guarantees __STDCPP_DEFAULT_NEW_ALIGNMENT__ for the block base.
    const auto base = reinterpret_cast<std::uintptr_t>(block.data.get());
    const std::size_t aligned =
        ((base + cursor_ + align - 1) & ~(align - 1)) - base;
    if (aligned + bytes <= block.size) {
      cursor_ = aligned + bytes;
      bytes_allocated_ += bytes;
      obs::self_profile::count(&obs::SelfProfileCounters::arena_bytes, bytes);
      return block.data.get() + aligned;
    }
    grow(bytes + align);
  }
}

void Arena::reset() {
  if (blocks_.size() > 1) {
    // Consolidate: one block covering everything held, so the next run of
    // the same workload bumps through a single contiguous region.
    const std::size_t total = bytes_reserved_;
    blocks_.clear();
    blocks_.push_back(Block{std::make_unique<std::byte[]>(total), total});
    bytes_reserved_ = total;
    obs::self_profile::count(&obs::SelfProfileCounters::arena_blocks);
  }
  current_ = 0;
  cursor_ = 0;
  bytes_allocated_ = 0;
}

}  // namespace holmes
