#pragma once

/// \file parallel_config.h
/// Parallelism degrees (t, p, d) and their consistency rules (paper §2.4):
/// t·p·d must equal the world size N, and tensor parallelism may not exceed
/// the GPUs of a single node (its traffic must stay on NVLink/PCIe).

#include <string>

#include "net/topology.h"

namespace holmes::parallel {

struct ParallelConfig {
  int tensor = 1;    ///< t
  int pipeline = 1;  ///< p
  int data = 1;      ///< d

  int world() const { return tensor * pipeline * data; }

  /// Throws holmes::ConfigError when the degrees are non-positive, do not
  /// multiply to the topology's world size, or t exceeds (or does not
  /// divide) the GPUs per node.
  void validate(const net::Topology& topo) const;

  std::string to_string() const;
};

/// Derives the data-parallel degree from a topology, t and p:
/// d = N / (t*p). Throws holmes::ConfigError when not divisible.
ParallelConfig derive_config(const net::Topology& topo, int tensor,
                             int pipeline);

}  // namespace holmes::parallel
