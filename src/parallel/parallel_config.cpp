#include "parallel/parallel_config.h"

#include "util/error.h"

namespace holmes::parallel {

void ParallelConfig::validate(const net::Topology& topo) const {
  if (tensor <= 0 || pipeline <= 0 || data <= 0) {
    throw ConfigError("parallel degrees must be positive: " + to_string());
  }
  const int n = topo.world_size();
  if (world() != n) {
    throw ConfigError("t*p*d = " + std::to_string(world()) +
                      " does not match world size " + std::to_string(n));
  }
  const int gpus = topo.gpus_per_node();
  if (tensor > gpus) {
    throw ConfigError("tensor parallel degree " + std::to_string(tensor) +
                      " exceeds GPUs per node " + std::to_string(gpus));
  }
  if (gpus % tensor != 0) {
    throw ConfigError("tensor parallel degree " + std::to_string(tensor) +
                      " must divide GPUs per node " + std::to_string(gpus));
  }
}

std::string ParallelConfig::to_string() const {
  return "t=" + std::to_string(tensor) + ",p=" + std::to_string(pipeline) +
         ",d=" + std::to_string(data);
}

ParallelConfig derive_config(const net::Topology& topo, int tensor,
                             int pipeline) {
  if (tensor <= 0 || pipeline <= 0) {
    throw ConfigError("parallel degrees must be positive");
  }
  const int n = topo.world_size();
  if (n % (tensor * pipeline) != 0) {
    throw ConfigError("world size " + std::to_string(n) +
                      " not divisible by t*p = " +
                      std::to_string(tensor * pipeline));
  }
  ParallelConfig config{tensor, pipeline, n / (tensor * pipeline)};
  config.validate(topo);
  return config;
}

}  // namespace holmes::parallel
