#pragma once

/// \file group_builder.h
/// Scheduling policies that turn (topology, degrees) into parallel groups.
///
/// MegatronGroupBuilder reproduces the NIC-oblivious baseline: slots map to
/// ranks in launcher order, so whether a data-parallel group is
/// NIC-homogeneous is a matter of luck. HolmesGroupBuilder implements the
/// paper's Cross-Cluster Pipeline Parallelism: nodes are reordered so each
/// pipeline-stage block lies inside a single cluster whenever the topology
/// permits, which confines cross-cluster (Ethernet) traffic to the
/// low-volume pipeline dimension and keeps every data-parallel group on a
/// homogeneous RDMA fabric.

#include <memory>
#include <string>
#include <vector>

#include "parallel/groups.h"

namespace holmes::parallel {

class GroupBuilder {
 public:
  virtual ~GroupBuilder() = default;
  virtual ParallelGroups build(const net::Topology& topo,
                               const ParallelConfig& config) const = 0;
  virtual std::string name() const = 0;
};

/// Identity slot order (the launcher's rank order), exactly Eq. 1/3/4 on
/// raw global ranks — what Megatron-LM and Megatron-DeepSpeed do.
class MegatronGroupBuilder final : public GroupBuilder {
 public:
  ParallelGroups build(const net::Topology& topo,
                       const ParallelConfig& config) const override;
  std::string name() const override { return "megatron"; }
};

/// Cluster-aligned node permutation (Holmes). When a stage needs a whole
/// number of nodes, stages are carved greedily from clusters so that each
/// stage's nodes share one cluster; leftover nodes form trailing (possibly
/// mixed) stages. When stages are sub-node, the identity order is already
/// node-aligned and is kept.
class HolmesGroupBuilder final : public GroupBuilder {
 public:
  ParallelGroups build(const net::Topology& topo,
                       const ParallelConfig& config) const override;
  std::string name() const override { return "holmes"; }
};

/// For each pipeline stage, the cluster index hosting all of its devices,
/// or -1 when the stage straddles clusters. Self-Adapting Pipeline
/// Partition keys stage speed off this.
std::vector<int> stage_clusters(const ParallelGroups& groups,
                                const net::Topology& topo);

}  // namespace holmes::parallel
