#include "parallel/groups.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace holmes::parallel {

ParallelGroups::ParallelGroups(ParallelConfig config,
                               std::vector<int> device_order)
    : config_(config), order_(std::move(device_order)) {
  const int n = config_.world();
  if (config_.tensor <= 0 || config_.pipeline <= 0 || config_.data <= 0) {
    throw ConfigError("parallel degrees must be positive");
  }
  if (order_.empty()) {
    order_.resize(static_cast<std::size_t>(n));
    std::iota(order_.begin(), order_.end(), 0);
  }
  if (static_cast<int>(order_.size()) != n) {
    throw ConfigError("device order must list all " + std::to_string(n) +
                      " ranks");
  }
  slot_.assign(static_cast<std::size_t>(n), -1);
  for (int s = 0; s < n; ++s) {
    const int rank = order_[static_cast<std::size_t>(s)];
    if (rank < 0 || rank >= n || slot_[static_cast<std::size_t>(rank)] != -1) {
      throw ConfigError("device order is not a permutation of 0.." +
                        std::to_string(n - 1));
    }
    slot_[static_cast<std::size_t>(rank)] = s;
  }

  const int t = config_.tensor, p = config_.pipeline, d = config_.data;
  // Eq. (1): TP group i = slots [i*t, (i+1)*t).
  tp_.resize(static_cast<std::size_t>(p) * d);
  for (int i = 0; i < p * d; ++i) {
    auto& g = tp_[static_cast<std::size_t>(i)];
    g.reserve(static_cast<std::size_t>(t));
    for (int j = 0; j < t; ++j) {
      g.push_back(order_[static_cast<std::size_t>(i * t + j)]);
    }
  }
  // Eq. (3): PP group i (= tp + dp*t) has members i + j*t*d.
  pp_.resize(static_cast<std::size_t>(t) * d);
  for (int i = 0; i < t * d; ++i) {
    auto& g = pp_[static_cast<std::size_t>(i)];
    g.reserve(static_cast<std::size_t>(p));
    for (int j = 0; j < p; ++j) {
      g.push_back(order_[static_cast<std::size_t>(i + j * t * d)]);
    }
  }
  // Eq. (4): DP group i (= tp + stage*t) has members tp + (stage*d + j)*t.
  dp_.resize(static_cast<std::size_t>(p) * t);
  for (int i = 0; i < p * t; ++i) {
    const int tp = i % t;
    const int stage = i / t;
    auto& g = dp_[static_cast<std::size_t>(i)];
    g.reserve(static_cast<std::size_t>(d));
    for (int j = 0; j < d; ++j) {
      g.push_back(order_[static_cast<std::size_t>(tp + (stage * d + j) * t)]);
    }
  }
}

int ParallelGroups::slot_of(int rank) const {
  HOLMES_CHECK_MSG(rank >= 0 && rank < config_.world(), "rank out of range");
  return slot_[static_cast<std::size_t>(rank)];
}

RankCoord ParallelGroups::coord_of(int rank) const {
  const int s = slot_of(rank);
  const int t = config_.tensor, d = config_.data;
  return RankCoord{s % t, (s / t) % d, s / (t * d)};
}

int ParallelGroups::rank_at(RankCoord coord) const {
  const int t = config_.tensor, d = config_.data, p = config_.pipeline;
  HOLMES_CHECK_MSG(coord.tp >= 0 && coord.tp < t, "tp coordinate out of range");
  HOLMES_CHECK_MSG(coord.dp >= 0 && coord.dp < d, "dp coordinate out of range");
  HOLMES_CHECK_MSG(coord.stage >= 0 && coord.stage < p,
                   "stage coordinate out of range");
  return order_[static_cast<std::size_t>(coord.tp + coord.dp * t +
                                         coord.stage * t * d)];
}

std::vector<int> ParallelGroups::stage_ranks(int stage) const {
  const int t = config_.tensor, d = config_.data;
  HOLMES_CHECK_MSG(stage >= 0 && stage < config_.pipeline, "stage out of range");
  std::vector<int> ranks;
  ranks.reserve(static_cast<std::size_t>(t) * d);
  for (int s = stage * t * d; s < (stage + 1) * t * d; ++s) {
    ranks.push_back(order_[static_cast<std::size_t>(s)]);
  }
  return ranks;
}

const std::vector<int>& ParallelGroups::dp_group_of(int rank) const {
  const RankCoord c = coord_of(rank);
  return dp_[static_cast<std::size_t>(c.tp + c.stage * config_.tensor)];
}

const std::vector<int>& ParallelGroups::pp_group_of(int rank) const {
  const RankCoord c = coord_of(rank);
  return pp_[static_cast<std::size_t>(c.tp + c.dp * config_.tensor)];
}

const std::vector<int>& ParallelGroups::tp_group_of(int rank) const {
  const int s = slot_of(rank);
  return tp_[static_cast<std::size_t>(s / config_.tensor)];
}

namespace {

void check_partition(const std::vector<std::vector<int>>& groups,
                     std::size_t expected_groups, std::size_t expected_size,
                     int world, const char* what) {
  if (groups.size() != expected_groups) {
    throw ConfigError(std::string(what) + ": expected " +
                      std::to_string(expected_groups) + " groups, got " +
                      std::to_string(groups.size()));
  }
  std::vector<int> seen(static_cast<std::size_t>(world), 0);
  for (const auto& g : groups) {
    if (g.size() != expected_size) {
      throw ConfigError(std::string(what) + ": group size " +
                        std::to_string(g.size()) + " != " +
                        std::to_string(expected_size));
    }
    for (int r : g) {
      if (r < 0 || r >= world || seen[static_cast<std::size_t>(r)]++) {
        throw ConfigError(std::string(what) + ": rank " + std::to_string(r) +
                          " repeated or out of range");
      }
    }
  }
}

}  // namespace

void validate_groups(const ParallelGroups& groups, const net::Topology& topo) {
  const ParallelConfig& c = groups.config();
  const int n = c.world();
  if (n != topo.world_size()) {
    throw ConfigError("group world size does not match topology");
  }
  check_partition(groups.tp_groups(),
                  static_cast<std::size_t>(c.pipeline) * c.data,
                  static_cast<std::size_t>(c.tensor), n, "[TP]");
  check_partition(groups.pp_groups(),
                  static_cast<std::size_t>(c.tensor) * c.data,
                  static_cast<std::size_t>(c.pipeline), n, "[PP]");
  check_partition(groups.dp_groups(),
                  static_cast<std::size_t>(c.pipeline) * c.tensor,
                  static_cast<std::size_t>(c.data), n, "[DP]");
  // Tensor parallel traffic must never leave a node.
  for (const auto& g : groups.tp_groups()) {
    for (int r : g) {
      if (topo.node_of(r) != topo.node_of(g.front())) {
        throw ConfigError("[TP] group crosses node boundary at rank " +
                          std::to_string(r));
      }
    }
  }
}

double rdma_dp_group_fraction(const ParallelGroups& groups,
                              const net::Topology& topo) {
  const auto& dp = groups.dp_groups();
  if (dp.empty()) return 1.0;
  int rdma = 0;
  for (const auto& g : dp) {
    if (g.size() < 2) {
      ++rdma;  // trivially fine
      continue;
    }
    const net::FabricKind f = topo.fastest_common_fabric(g);
    if (f != net::FabricKind::kEthernet) ++rdma;
  }
  return static_cast<double>(rdma) / static_cast<double>(dp.size());
}

}  // namespace holmes::parallel
