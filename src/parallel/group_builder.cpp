#include "parallel/group_builder.h"

#include <numeric>

#include "util/error.h"
#include "util/logging.h"

namespace holmes::parallel {

ParallelGroups MegatronGroupBuilder::build(const net::Topology& topo,
                                           const ParallelConfig& config) const {
  config.validate(topo);
  return ParallelGroups(config);
}

ParallelGroups HolmesGroupBuilder::build(const net::Topology& topo,
                                         const ParallelConfig& config) const {
  config.validate(topo);
  const int gpus = topo.gpus_per_node();
  const int devices_per_stage = config.tensor * config.data;

  if (devices_per_stage % gpus != 0) {
    // Stages are sub-node (or not node-aligned): nodes are never split
    // across clusters, so the identity order is already cluster-aligned at
    // every node boundary; nothing to improve at node granularity.
    return ParallelGroups(config);
  }

  const int nodes_per_stage = devices_per_stage / gpus;
  // Collect each cluster's node list (global node indices, in order).
  std::vector<std::vector<int>> cluster_nodes(
      static_cast<std::size_t>(topo.cluster_count()));
  {
    int global_node = 0;
    for (int c = 0; c < topo.cluster_count(); ++c) {
      for (int k = 0; k < topo.cluster(c).nodes; ++k) {
        cluster_nodes[static_cast<std::size_t>(c)].push_back(global_node++);
      }
    }
  }

  // Carve whole stages out of clusters greedily, in cluster order.
  std::vector<int> node_order;
  node_order.reserve(static_cast<std::size_t>(topo.total_nodes()));
  std::vector<int> leftovers;
  for (auto& nodes : cluster_nodes) {
    std::size_t i = 0;
    while (nodes.size() - i >= static_cast<std::size_t>(nodes_per_stage)) {
      for (int k = 0; k < nodes_per_stage; ++k) node_order.push_back(nodes[i++]);
    }
    for (; i < nodes.size(); ++i) leftovers.push_back(nodes[i]);
  }
  if (!leftovers.empty()) {
    HOLMES_LOG(kWarning) << "Holmes group builder: " << leftovers.size()
                         << " nodes cannot be cluster-aligned; trailing "
                            "pipeline stages will mix clusters";
    node_order.insert(node_order.end(), leftovers.begin(), leftovers.end());
  }

  // Expand the node permutation to a device permutation (intra-node device
  // order preserved so tensor-parallel groups stay inside their node).
  std::vector<int> device_order;
  device_order.reserve(static_cast<std::size_t>(topo.world_size()));
  for (int node : node_order) {
    for (int g = 0; g < gpus; ++g) device_order.push_back(node * gpus + g);
  }
  return ParallelGroups(config, std::move(device_order));
}

std::vector<int> stage_clusters(const ParallelGroups& groups,
                                const net::Topology& topo) {
  std::vector<int> clusters;
  clusters.reserve(static_cast<std::size_t>(groups.config().pipeline));
  for (int stage = 0; stage < groups.config().pipeline; ++stage) {
    const std::vector<int> ranks = groups.stage_ranks(stage);
    int cluster = topo.cluster_of(ranks.front());
    for (int r : ranks) {
      if (topo.cluster_of(r) != cluster) {
        cluster = -1;
        break;
      }
    }
    clusters.push_back(cluster);
  }
  return clusters;
}

}  // namespace holmes::parallel
