#pragma once

/// \file groups.h
/// Parallel group matrices [TP], [PP], [DP] (paper Eq. 1, 3, 4).
///
/// The formulas are defined over *slots* 0..N-1 with tensor parallelism
/// innermost, data parallelism next, and pipeline stages outermost:
///   slot = tp + dp·t + stage·t·d.
/// A scheduling method is then exactly a permutation `device_order` mapping
/// slots to global device ranks: Megatron-LM uses the identity (launcher
/// order), Holmes permutes nodes so pipeline-stage blocks align with
/// cluster boundaries (Cross-Cluster Pipeline Parallelism) which makes
/// every data-parallel group NIC-homogeneous (Automatic NIC Selection).

#include <vector>

#include "net/topology.h"
#include "parallel/parallel_config.h"

namespace holmes::parallel {

/// A device's coordinates in the three parallel dimensions.
struct RankCoord {
  int tp = 0;     ///< position within its tensor parallel group
  int dp = 0;     ///< position within its data parallel group
  int stage = 0;  ///< pipeline stage index
  bool operator==(const RankCoord&) const = default;
};

class ParallelGroups {
 public:
  /// Builds the group matrices for `config` with the given slot→rank
  /// permutation. An empty `device_order` means identity. Throws
  /// holmes::ConfigError when the permutation is not a bijection over
  /// 0..N-1.
  ParallelGroups(ParallelConfig config, std::vector<int> device_order = {});

  const ParallelConfig& config() const { return config_; }

  /// Eq. (1): p·d groups of t ranks each.
  const std::vector<std::vector<int>>& tp_groups() const { return tp_; }
  /// Eq. (3): t·d groups of p ranks each.
  const std::vector<std::vector<int>>& pp_groups() const { return pp_; }
  /// Eq. (4): p·t groups of d ranks each.
  const std::vector<std::vector<int>>& dp_groups() const { return dp_; }

  /// Coordinates of a global rank. Throws when the rank is not mapped.
  RankCoord coord_of(int rank) const;

  /// Global rank at the given coordinates.
  int rank_at(RankCoord coord) const;

  /// Global ranks forming pipeline stage `stage` (t·d ranks).
  std::vector<int> stage_ranks(int stage) const;

  /// The data-parallel group containing `rank`.
  const std::vector<int>& dp_group_of(int rank) const;
  /// The pipeline group containing `rank`.
  const std::vector<int>& pp_group_of(int rank) const;
  /// The tensor group containing `rank`.
  const std::vector<int>& tp_group_of(int rank) const;

 private:
  int slot_of(int rank) const;

  ParallelConfig config_;
  std::vector<int> order_;      ///< slot -> rank
  std::vector<int> slot_;       ///< rank -> slot
  std::vector<std::vector<int>> tp_, pp_, dp_;
};

/// Checks structural invariants of a group set against a topology:
///  - group counts and sizes match the config,
///  - each parallel dimension partitions the ranks,
///  - every tensor-parallel group sits inside a single node (its traffic
///    must ride NVLink/PCIe).
/// Throws holmes::ConfigError on violation.
void validate_groups(const ParallelGroups& groups, const net::Topology& topo);

/// Fraction of data-parallel groups whose members all share an RDMA-capable
/// common fabric — 1.0 is what Automatic NIC Selection guarantees whenever
/// the topology permits it.
double rdma_dp_group_fraction(const ParallelGroups& groups,
                              const net::Topology& topo);

}  // namespace holmes::parallel
