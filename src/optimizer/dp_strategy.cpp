#include "optimizer/dp_strategy.h"

#include "util/error.h"

namespace holmes::optimizer {

std::string to_string(DpSyncKind kind) {
  switch (kind) {
    case DpSyncKind::kAllReduce: return "allreduce";
    case DpSyncKind::kDistributedOptimizer: return "distributed-optimizer";
    case DpSyncKind::kOverlappedDistributedOptimizer:
      return "overlapped-distributed-optimizer";
    case DpSyncKind::kFullyShardedOptimizer:
      return "fully-sharded-optimizer";
  }
  return "?";
}

std::vector<Bytes> bucket_sizes(Bytes total, int buckets) {
  if (buckets <= 0) throw ConfigError("bucket count must be positive");
  if (total < 0) throw ConfigError("negative gradient size");
  const Bytes base = total / buckets;
  const Bytes longer = total % buckets;
  std::vector<Bytes> sizes(static_cast<std::size_t>(buckets), base);
  for (Bytes i = 0; i < longer; ++i) ++sizes[static_cast<std::size_t>(i)];
  return sizes;
}

}  // namespace holmes::optimizer
