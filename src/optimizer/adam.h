#pragma once

/// \file adam.h
/// Reference optimizer math (Adam and SGD-with-momentum) on real float
/// buffers. Principle one of the Overlapped Distributed Optimizer (paper
/// §3.2) is that these updates are element-wise, so parameters never need
/// to exist as complete entities on one device — each data-parallel rank
/// can update just its reduce-scatter shard. The tests prove shard-wise
/// updates bitwise-match whole-buffer updates, which is the correctness
/// basis of the distributed optimizer strategies.

#include <span>

namespace holmes::optimizer {

struct AdamParams {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;
};

/// Per-parameter Adam state (first/second moment). Spans must be equal
/// length; `step` is the 1-based update count used for bias correction.
void adam_step(std::span<float> params, std::span<const float> grads,
               std::span<float> m, std::span<float> v, long step,
               const AdamParams& hp = {});

struct SgdParams {
  double lr = 1e-2;
  double momentum = 0.9;
  double weight_decay = 0.0;
};

/// SGD with (optional) momentum.
void sgd_step(std::span<float> params, std::span<const float> grads,
              std::span<float> momentum_buf, const SgdParams& hp = {});

}  // namespace holmes::optimizer
