#include "optimizer/adam.h"

#include <cmath>

#include "util/error.h"

namespace holmes::optimizer {

void adam_step(std::span<float> params, std::span<const float> grads,
               std::span<float> m, std::span<float> v, long step,
               const AdamParams& hp) {
  HOLMES_CHECK_MSG(params.size() == grads.size() && params.size() == m.size() &&
                       params.size() == v.size(),
                   "adam buffers must have equal length");
  HOLMES_CHECK_MSG(step >= 1, "step count is 1-based");
  const double bias1 = 1.0 - std::pow(hp.beta1, static_cast<double>(step));
  const double bias2 = 1.0 - std::pow(hp.beta2, static_cast<double>(step));
  for (std::size_t i = 0; i < params.size(); ++i) {
    double g = grads[i];
    if (hp.weight_decay != 0.0) g += hp.weight_decay * params[i];
    const double m_new = hp.beta1 * m[i] + (1.0 - hp.beta1) * g;
    const double v_new = hp.beta2 * v[i] + (1.0 - hp.beta2) * g * g;
    m[i] = static_cast<float>(m_new);
    v[i] = static_cast<float>(v_new);
    const double m_hat = m_new / bias1;
    const double v_hat = v_new / bias2;
    params[i] -= static_cast<float>(hp.lr * m_hat /
                                    (std::sqrt(v_hat) + hp.eps));
  }
}

void sgd_step(std::span<float> params, std::span<const float> grads,
              std::span<float> momentum_buf, const SgdParams& hp) {
  HOLMES_CHECK_MSG(params.size() == grads.size() &&
                       params.size() == momentum_buf.size(),
                   "sgd buffers must have equal length");
  for (std::size_t i = 0; i < params.size(); ++i) {
    double g = grads[i];
    if (hp.weight_decay != 0.0) g += hp.weight_decay * params[i];
    const double mom = hp.momentum * momentum_buf[i] + g;
    momentum_buf[i] = static_cast<float>(mom);
    params[i] -= static_cast<float>(hp.lr * mom);
  }
}

}  // namespace holmes::optimizer
