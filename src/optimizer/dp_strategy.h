#pragma once

/// \file dp_strategy.h
/// Data-parallel gradient synchronization strategies.
///
/// The three strategies the paper compares (§3.2, Table 5):
///  - AllReduce: classic DDP — one ring all-reduce of the full gradient
///    after the backward pass; every rank then runs the full optimizer.
///    (Megatron-LM, Megatron-DeepSpeed without ZeRO.)
///  - DistributedOptimizer: ZeRO-1 style — reduce-scatter the gradients,
///    each rank updates only its 1/d shard, then all-gather the updated
///    parameters. Same 2(n-1)/n ring volume, but optimizer compute and
///    state shrink by d.
///  - OverlappedDistributedOptimizer (Megatron-LLaMA): the distributed
///    optimizer with gradients cut into buckets whose reduce-scatters
///    launch as soon as their layers' gradients are final (overlapping the
///    tail of the backward pass), and whose parameter all-gathers prefetch
///    under the next iteration's forward.

#include <string>
#include <vector>

#include "util/units.h"

namespace holmes::optimizer {

enum class DpSyncKind {
  kAllReduce,
  kDistributedOptimizer,
  kOverlappedDistributedOptimizer,
  /// ZeRO-3 / FSDP: weights themselves are sharded, so parameters are
  /// all-gathered for the backward pass as well — twice the all-gather
  /// volume of ZeRO-1 in exchange for 1/d weight memory.
  kFullyShardedOptimizer,
};

std::string to_string(DpSyncKind kind);

struct DpSyncConfig {
  DpSyncKind kind = DpSyncKind::kAllReduce;
  /// Gradient bucket count for the overlapped strategy (ignored otherwise).
  int buckets = 4;

  /// True when optimizer state/compute is sharded across the DP group.
  bool shards_optimizer() const { return kind != DpSyncKind::kAllReduce; }
  /// True when weights are sharded too (ZeRO-3/FSDP).
  bool shards_weights() const {
    return kind == DpSyncKind::kFullyShardedOptimizer;
  }
  /// Parameter all-gathers per iteration (ZeRO-3 re-gathers for backward).
  int allgather_passes() const { return shards_weights() ? 2 : 1; }
  /// True when gradient communication overlaps backward compute.
  bool overlaps_backward() const {
    return kind == DpSyncKind::kOverlappedDistributedOptimizer;
  }
  /// True when the parameter all-gather prefetches under the next forward.
  bool overlaps_next_forward() const {
    return kind == DpSyncKind::kOverlappedDistributedOptimizer;
  }
  /// Number of communication buckets actually used.
  int effective_buckets() const { return overlaps_backward() ? buckets : 1; }

  static DpSyncConfig all_reduce() { return {DpSyncKind::kAllReduce, 1}; }
  static DpSyncConfig distributed() {
    return {DpSyncKind::kDistributedOptimizer, 1};
  }
  static DpSyncConfig overlapped(int buckets = 4) {
    return {DpSyncKind::kOverlappedDistributedOptimizer, buckets};
  }
  static DpSyncConfig fully_sharded() {
    return {DpSyncKind::kFullyShardedOptimizer, 1};
  }
};

/// Splits `total` bytes into `buckets` near-equal pieces (first buckets get
/// the remainder, mirroring comm::ChunkLayout). Throws holmes::ConfigError
/// for non-positive bucket counts or negative totals; buckets may exceed
/// total, producing zero-byte tails which callers should skip.
std::vector<Bytes> bucket_sizes(Bytes total, int buckets);

}  // namespace holmes::optimizer
