#include "pipeline/schedule.h"

#include <algorithm>

#include "util/error.h"

namespace holmes::pipeline {

namespace {

void check_args(int stages, int microbatches) {
  if (stages <= 0) throw ConfigError("need at least one pipeline stage");
  if (microbatches <= 0) throw ConfigError("need at least one micro-batch");
}

}  // namespace

std::vector<StageProgram> GPipeSchedule::programs(int stages,
                                                  int microbatches) const {
  check_args(stages, microbatches);
  std::vector<StageProgram> all(static_cast<std::size_t>(stages));
  for (auto& program : all) {
    program.reserve(static_cast<std::size_t>(microbatches) * 2);
    for (int mb = 0; mb < microbatches; ++mb) {
      program.push_back({OpKind::kForward, mb});
    }
    for (int mb = 0; mb < microbatches; ++mb) {
      program.push_back({OpKind::kBackward, mb});
    }
  }
  return all;
}

std::vector<StageProgram> PipeDreamFlushSchedule::programs(
    int stages, int microbatches) const {
  check_args(stages, microbatches);
  std::vector<StageProgram> all(static_cast<std::size_t>(stages));
  for (int s = 0; s < stages; ++s) {
    StageProgram& program = all[static_cast<std::size_t>(s)];
    program.reserve(static_cast<std::size_t>(microbatches) * 2);
    const int warmup = std::min(stages - 1 - s, microbatches);
    int next_fwd = 0;
    int next_bwd = 0;
    for (int i = 0; i < warmup; ++i) {
      program.push_back({OpKind::kForward, next_fwd++});
    }
    // Steady state: one forward, one backward.
    while (next_fwd < microbatches) {
      program.push_back({OpKind::kForward, next_fwd++});
      program.push_back({OpKind::kBackward, next_bwd++});
    }
    // Cool-down: drain remaining backwards.
    while (next_bwd < microbatches) {
      program.push_back({OpKind::kBackward, next_bwd++});
    }
  }
  return all;
}

InterleavedSchedule::InterleavedSchedule(int chunks) : chunks_(chunks) {
  if (chunks < 1) throw ConfigError("need at least one model chunk");
}

std::vector<StageProgram> InterleavedSchedule::programs(int stages,
                                                        int microbatches) const {
  check_args(stages, microbatches);
  if (chunks_ == 1) return PipeDreamFlushSchedule{}.programs(stages, microbatches);
  if (microbatches % stages != 0) {
    throw ConfigError(
        "interleaved schedule needs microbatches divisible by the stage "
        "count, got " + std::to_string(microbatches) + " % " +
        std::to_string(stages));
  }
  // Megatron-LM's interleaved 1F1B: per device, forward work items iterate
  // super-groups of stages*chunks items — chunks ascending, `stages`
  // consecutive micro-batches per chunk; backward mirrors with chunks
  // descending. Stage s warms up with 2*(stages-1-s) + (chunks-1)*stages
  // forwards, alternates, then drains.
  const int total = microbatches * chunks_;
  const int super = stages * chunks_;
  auto fwd_item = [&](int i) {
    const int group = i / super;
    const int chunk = i % super / stages;
    const int mb = group * stages + i % stages;
    return PipelineOp{OpKind::kForward, mb, chunk};
  };
  auto bwd_item = [&](int j) {
    const int group = j / super;
    const int chunk = chunks_ - 1 - j % super / stages;
    const int mb = group * stages + j % stages;
    return PipelineOp{OpKind::kBackward, mb, chunk};
  };

  std::vector<StageProgram> all(static_cast<std::size_t>(stages));
  for (int s = 0; s < stages; ++s) {
    StageProgram& program = all[static_cast<std::size_t>(s)];
    program.reserve(static_cast<std::size_t>(total) * 2);
    const int warmup =
        std::min(2 * (stages - 1 - s) + (chunks_ - 1) * stages, total);
    int next_fwd = 0;
    int next_bwd = 0;
    for (int i = 0; i < warmup; ++i) program.push_back(fwd_item(next_fwd++));
    while (next_fwd < total) {
      program.push_back(fwd_item(next_fwd++));
      program.push_back(bwd_item(next_bwd++));
    }
    while (next_bwd < total) program.push_back(bwd_item(next_bwd++));
  }
  return all;
}

int max_in_flight(const StageProgram& program) {
  int in_flight = 0;
  int peak = 0;
  for (const PipelineOp& op : program) {
    in_flight += op.kind == OpKind::kForward ? 1 : -1;
    peak = std::max(peak, in_flight);
  }
  return peak;
}

void validate_schedule(const std::vector<StageProgram>& programs,
                       int microbatches, int chunks) {
  const int stages = static_cast<int>(programs.size());
  HOLMES_CHECK_MSG(stages > 0, "empty schedule");
  HOLMES_CHECK_MSG(chunks >= 1, "need at least one chunk");
  const int virtual_stages = stages * chunks;

  // Per-stage sanity: each (micro-batch, chunk) appears as one forward then
  // one backward.
  for (int s = 0; s < stages; ++s) {
    const StageProgram& program = programs[static_cast<std::size_t>(s)];
    const auto slots = static_cast<std::size_t>(microbatches) * chunks;
    std::vector<int> fwd_at(slots, -1);
    std::vector<int> bwd_at(slots, -1);
    for (int i = 0; i < static_cast<int>(program.size()); ++i) {
      const PipelineOp& op = program[static_cast<std::size_t>(i)];
      HOLMES_CHECK_MSG(op.microbatch >= 0 && op.microbatch < microbatches,
                       "micro-batch index out of range");
      HOLMES_CHECK_MSG(op.chunk >= 0 && op.chunk < chunks,
                       "chunk index out of range");
      const auto slot =
          static_cast<std::size_t>(op.chunk) * microbatches + op.microbatch;
      auto& at = op.kind == OpKind::kForward ? fwd_at : bwd_at;
      HOLMES_CHECK_MSG(at[slot] == -1, "micro-batch scheduled twice");
      at[slot] = i;
    }
    for (std::size_t slot = 0; slot < slots; ++slot) {
      HOLMES_CHECK_MSG(fwd_at[slot] != -1, "missing forward");
      HOLMES_CHECK_MSG(bwd_at[slot] != -1, "missing backward");
      HOLMES_CHECK_MSG(fwd_at[slot] < bwd_at[slot], "backward before forward");
    }
  }

  // Cross-stage realizability over the virtual pipeline v = chunk*stages+s:
  // execute greedily; deadlock means the schedule is not a valid order.
  std::vector<std::size_t> cursor(static_cast<std::size_t>(stages), 0);
  std::vector<std::vector<bool>> fwd_done(
      static_cast<std::size_t>(virtual_stages),
      std::vector<bool>(static_cast<std::size_t>(microbatches), false));
  std::vector<std::vector<bool>> bwd_done = fwd_done;
  bool progress = true;
  std::size_t remaining = 0;
  for (const auto& program : programs) remaining += program.size();
  while (remaining > 0 && progress) {
    progress = false;
    for (int s = 0; s < stages; ++s) {
      auto& i = cursor[static_cast<std::size_t>(s)];
      while (i < programs[static_cast<std::size_t>(s)].size()) {
        const PipelineOp& op = programs[static_cast<std::size_t>(s)][i];
        const auto mb = static_cast<std::size_t>(op.microbatch);
        const int v = op.chunk * stages + s;
        bool runnable;
        if (op.kind == OpKind::kForward) {
          runnable = v == 0 || fwd_done[static_cast<std::size_t>(v - 1)][mb];
        } else {
          runnable = fwd_done[static_cast<std::size_t>(v)][mb] &&
                     (v == virtual_stages - 1 ||
                      bwd_done[static_cast<std::size_t>(v + 1)][mb]);
        }
        if (!runnable) break;
        (op.kind == OpKind::kForward ? fwd_done : bwd_done)[
            static_cast<std::size_t>(v)][mb] = true;
        ++i;
        --remaining;
        progress = true;
      }
    }
  }
  HOLMES_CHECK_MSG(remaining == 0, "schedule deadlocks");
}

}  // namespace holmes::pipeline
