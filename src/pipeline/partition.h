#pragma once

/// \file partition.h
/// Pipeline stage partitioning strategies.
///
/// Uniform partition is the homogeneous-cluster default. Self-Adapting
/// Pipeline Partition is the paper's Eq. (2): stages backed by faster NICs
/// receive proportionally more transformer layers,
///   N_fast = floor(alpha * S(fast) / sum(S) * N),
/// with the hyper-parameter alpha (paper uses 1.05) deliberately
/// over-allocating to fast stages and the slower stages absorbing the
/// remainder.

#include <vector>

#include "net/nic.h"

namespace holmes::pipeline {

/// layers-per-stage; sums to the model's layer count, every entry >= 1.
using StagePartition = std::vector<int>;

/// Per-NIC achievable training speed S(.) in TFLOPS, used as the weights of
/// Eq. (2). Defaults are the paper's own micro-benchmark (Table 1).
struct StageSpeeds {
  double infiniband = 197.0;
  double roce = 160.0;
  double ethernet = 122.0;

  double of(net::NicType nic) const;
};

/// Equal split; earlier stages absorb the remainder (Megatron default).
StagePartition uniform_partition(int layers, int stages);

/// Generalized Eq. (2): layers proportional to `weights` scaled by `alpha`,
/// floored, clamped to >= 1 per stage; leftover layers go to the slowest
/// stages first (the two-stage case then reduces exactly to the paper's
/// N_roce = N - N_ib). Throws holmes::ConfigError when layers < stages or
/// any weight is non-positive.
StagePartition proportional_partition(int layers,
                                      const std::vector<double>& weights,
                                      double alpha = 1.0);

/// Self-Adapting Pipeline Partition: proportional partition with weights
/// S(nic of each stage). Stages whose cluster is mixed/unknown should pass
/// NicType::kEthernet (the conservative choice).
StagePartition self_adapting_partition(int layers,
                                       const std::vector<net::NicType>& stage_nics,
                                       double alpha = 1.05,
                                       const StageSpeeds& speeds = {});

}  // namespace holmes::pipeline
