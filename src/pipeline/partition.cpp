#include "pipeline/partition.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"

namespace holmes::pipeline {

double StageSpeeds::of(net::NicType nic) const {
  switch (nic) {
    case net::NicType::kInfiniBand: return infiniband;
    case net::NicType::kRoCE: return roce;
    case net::NicType::kEthernet: return ethernet;
  }
  return ethernet;
}

StagePartition uniform_partition(int layers, int stages) {
  if (stages <= 0) throw ConfigError("need at least one stage");
  if (layers < stages) {
    throw ConfigError("cannot split " + std::to_string(layers) +
                      " layers into " + std::to_string(stages) + " stages");
  }
  StagePartition partition(static_cast<std::size_t>(stages), layers / stages);
  for (int i = 0; i < layers % stages; ++i) {
    ++partition[static_cast<std::size_t>(i)];
  }
  return partition;
}

StagePartition proportional_partition(int layers,
                                      const std::vector<double>& weights,
                                      double alpha) {
  const int stages = static_cast<int>(weights.size());
  if (stages <= 0) throw ConfigError("need at least one stage");
  if (layers < stages) {
    throw ConfigError("cannot split " + std::to_string(layers) +
                      " layers into " + std::to_string(stages) + " stages");
  }
  if (alpha <= 0) throw ConfigError("alpha must be positive");
  double total_weight = 0;
  for (double w : weights) {
    if (w <= 0) throw ConfigError("stage weights must be positive");
    total_weight += w;
  }

  // Eq. (2): floor(alpha * w_j / sum(w) * N), at least one layer per stage.
  StagePartition partition(static_cast<std::size_t>(stages));
  int assigned = 0;
  for (int j = 0; j < stages; ++j) {
    const double quota =
        alpha * weights[static_cast<std::size_t>(j)] / total_weight * layers;
    partition[static_cast<std::size_t>(j)] =
        std::max(1, static_cast<int>(std::floor(quota)));
    assigned += partition[static_cast<std::size_t>(j)];
  }

  // Stages ordered slowest-first absorb the imbalance: they gain leftover
  // layers (alpha < 1 or flooring losses) or shed excess (alpha > 1).
  std::vector<int> by_speed(static_cast<std::size_t>(stages));
  std::iota(by_speed.begin(), by_speed.end(), 0);
  std::stable_sort(by_speed.begin(), by_speed.end(), [&](int a, int b) {
    return weights[static_cast<std::size_t>(a)] <
           weights[static_cast<std::size_t>(b)];
  });
  std::size_t cursor = 0;
  while (assigned < layers) {
    ++partition[static_cast<std::size_t>(by_speed[cursor])];
    ++assigned;
    cursor = (cursor + 1) % by_speed.size();
  }
  while (assigned > layers) {
    auto& count = partition[static_cast<std::size_t>(by_speed[cursor])];
    if (count > 1) {
      --count;
      --assigned;
    }
    cursor = (cursor + 1) % by_speed.size();
  }
  return partition;
}

StagePartition self_adapting_partition(int layers,
                                       const std::vector<net::NicType>& stage_nics,
                                       double alpha, const StageSpeeds& speeds) {
  std::vector<double> weights;
  weights.reserve(stage_nics.size());
  for (net::NicType nic : stage_nics) weights.push_back(speeds.of(nic));
  return proportional_partition(layers, weights, alpha);
}

}  // namespace holmes::pipeline
