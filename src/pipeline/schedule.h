#pragma once

/// \file schedule.h
/// Pipeline execution schedules: the per-stage order of forward/backward
/// work over the micro-batches of one iteration (ending in a pipeline
/// flush, i.e. synchronous optimizer semantics).
///
/// GPipe runs all forwards then all backwards (simple, high activation
/// memory). PipeDream-Flush (1F1B) — the schedule Holmes builds on —
/// limits in-flight micro-batches per stage to the pipeline depth by
/// alternating one-forward-one-backward after a short warm-up.

#include <memory>
#include <string>
#include <vector>

namespace holmes::pipeline {

enum class OpKind { kForward, kBackward };

struct PipelineOp {
  OpKind kind = OpKind::kForward;
  int microbatch = 0;
  /// Model-chunk index for interleaved schedules (virtual pipeline stage
  /// chunk * stages + device_stage); always 0 for GPipe and plain 1F1B.
  int chunk = 0;
  bool operator==(const PipelineOp&) const = default;
};

/// Ordered work list of one stage for one iteration.
using StageProgram = std::vector<PipelineOp>;

class PipelineSchedule {
 public:
  virtual ~PipelineSchedule() = default;

  /// Programs for all `stages`, each covering `microbatches` forwards and
  /// backwards. Throws holmes::ConfigError on non-positive arguments.
  virtual std::vector<StageProgram> programs(int stages,
                                             int microbatches) const = 0;

  virtual std::string name() const = 0;
};

/// All forwards, then all backwards.
class GPipeSchedule final : public PipelineSchedule {
 public:
  std::vector<StageProgram> programs(int stages, int microbatches) const override;
  std::string name() const override { return "gpipe"; }
};

/// PipeDream-Flush / 1F1B: stage s warms up with (stages-1-s) forwards,
/// then alternates forward/backward, then drains the remaining backwards.
class PipeDreamFlushSchedule final : public PipelineSchedule {
 public:
  std::vector<StageProgram> programs(int stages, int microbatches) const override;
  std::string name() const override { return "1f1b"; }
};

/// Megatron-LM's interleaved 1F1B: each device hosts `chunks` model chunks,
/// forming a virtual pipeline of stages*chunks stages that loops through
/// the devices `chunks` times. Smaller bubbles at the price of more
/// cross-device activation traffic. Requires microbatches to be a multiple
/// of the stage count (Megatron's own constraint).
class InterleavedSchedule final : public PipelineSchedule {
 public:
  explicit InterleavedSchedule(int chunks);

  std::vector<StageProgram> programs(int stages, int microbatches) const override;
  std::string name() const override {
    return "interleaved-" + std::to_string(chunks_);
  }
  int chunks() const { return chunks_; }

 private:
  int chunks_;
};

/// Maximum number of micro-batches whose forward has run but whose backward
/// has not, at any point of `program` — the activation-memory high-water
/// mark of the schedule.
int max_in_flight(const StageProgram& program);

/// Validates a full schedule: every stage runs each micro-batch's forward
/// exactly once and backward exactly once per chunk, forward precedes
/// backward, and the cross-stage dependency order is realizable (checked
/// structurally via a topological simulation over virtual stages
/// v = chunk * stages + stage). Throws holmes::InternalError on violation.
/// `chunks` is 1 for GPipe / plain 1F1B.
void validate_schedule(const std::vector<StageProgram>& programs,
                       int microbatches, int chunks = 1);

}  // namespace holmes::pipeline
