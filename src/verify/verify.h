#pragma once

/// \file verify.h
/// Umbrella header for the static verifier.
///
/// `holmes_verify` is a diagnostics engine over the planning layer and the
/// simulation substrate: stable rule ids (HV1xx plan, HV2xx graph, HV3xx
/// execution, HV4xx flow), severities, source attribution to task/group/
/// link ids, and text + JSON reports. See docs/static-analysis.md for the
/// rule catalog and how to add a rule.
///
///  - verify/diagnostics.h — Diagnostic, LintReport, text/JSON writers
///  - verify/rules.h       — the rule registry (ids, families, docs)
///  - verify/plan_lints.h  — HV1xx: PlanView + lint_plan
///  - verify/graph_lints.h — HV2xx/HV3xx: lint_graph + lint_execution
///  - verify/flow_lints.h  — HV4xx: analyze_flow + lint_flow +
///                           check_determinism (the schedule-race detector)
///
/// The library layers strictly below `core`; core/preflight.h adapts a
/// core::TrainingPlan into a PlanView and wires the debug-mode pre-flight
/// into the training simulator.

#include "verify/diagnostics.h"   // IWYU pragma: export
#include "verify/flow_lints.h"    // IWYU pragma: export
#include "verify/graph_lints.h"   // IWYU pragma: export
#include "verify/plan_lints.h"    // IWYU pragma: export
#include "verify/rules.h"         // IWYU pragma: export
