#pragma once

/// \file flow_lints.h
/// Flow-family (HV4xx) lints: simulation-free bounds on a task graph plus
/// the schedule-race determinism check.
///
/// analyze_flow derives, without simulating, the quantities a strategy
/// search wants for pruning (the AMP / H2 cost-model bounds): the longest
/// dependency chain's aggregate cost, every resource's aggregate declared
/// occupancy, and each endpoint's in-flight transfer high-water mark over
/// topological cuts. Both time figures are true makespan lower bounds — no
/// admissible schedule can beat the critical chain or squeeze a serial
/// resource's work into less wall-clock than its sum of costs.
///
/// lint_flow cross-checks those bounds against an executed sim::SimResult:
/// a static lower bound exceeding the simulated makespan proves the
/// analyzer or the executor wrong (HV401/HV402), the watermark is checked
/// against a per-device buffer budget (HV403), and closed collective
/// channels must move balanced byte volumes across every cluster cut
/// (HV404).
///
/// check_determinism is the race detector for the DES itself: it re-runs
/// the executor with equal-ready-time ties reordered under seeded
/// permutations (sim::TieBreak) and reports any bitwise divergence from the
/// canonical run as HV405, naming the first diverging task. With the
/// resource-disjoint policy divergence is always an executor bug; with the
/// permute-all policy it exposes graphs whose schedule depends on tie
/// order — the sync points a future parallel engine must respect.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/executor.h"
#include "sim/task_graph.h"
#include "verify/diagnostics.h"
#include "verify/graph_lints.h"

namespace holmes::verify {

/// Everything analyze_flow derives from a task set. Only meaningful when
/// `valid` is true (dependencies well-formed and acyclic — HV201/HV202
/// report those; the flow bounds would be garbage on a broken graph).
struct FlowAnalysis {
  bool valid = false;

  /// Longest dependency chain through declared costs (compute duration,
  /// transfer serialization + latency), in seconds, and its task ids in
  /// dependency order.
  double chain_bound_s = 0;
  std::vector<sim::TaskId> chain;

  /// Aggregate declared occupancy per resource (exactly what the executor
  /// accounts as busy time), the busiest resource, and its load.
  std::vector<double> resource_load_s;
  sim::ResourceId busiest_resource = -1;
  double resource_bound_s = 0;

  /// max(chain_bound_s, resource_bound_s): the flow makespan lower bound.
  double makespan_bound_s = 0;

  /// Peak in-flight received bytes per destination endpoint: a transfer's
  /// bytes are live from the transfer's topological position until its last
  /// dependent's (the receive buffer cannot be released before every
  /// consumer ran). Sorted by endpoint name.
  struct EndpointWatermark {
    std::string endpoint;
    Bytes peak_bytes = 0;
  };
  std::vector<EndpointWatermark> watermarks;
};

/// Simulation-free flow analysis of a task set.
FlowAnalysis analyze_flow(const TaskSetRef& view);
FlowAnalysis analyze_flow(const sim::TaskGraph& graph);

struct FlowLintOptions {
  /// Relative tolerance for floating-point comparisons.
  double tolerance = 1e-9;
  /// Per-endpoint in-flight byte budget for HV403 (the paper's 80 GB A100
  /// by default); 0 disables the rule.
  Bytes buffer_budget = 80LL * 1024 * 1024 * 1024;
  /// Resource id -> cluster id for HV404's cut balance (-1 = unknown,
  /// transfers touching unknown clusters are skipped); empty disables the
  /// rule. core/preflight.h derives this map from a net::Topology.
  std::vector<int> resource_cluster;
  /// Cap on diagnostics emitted per rule.
  std::size_t max_diagnostics_per_rule = 8;
  /// The run executed under an active sim::RateTimeline (fault injection):
  /// degraded resources serve declared cost over a longer occupancy, so
  /// HV402 only requires accounted busy time >= static load instead of
  /// equality. HV401's chain bound stays exact — stretching never shrinks
  /// any task's span, so the fault-free chain is still a valid lower bound.
  bool allow_stretched = false;
};

/// Flow rules HV401..HV404. `result` may be null: the cross-check rules
/// HV401/HV402 need executed timings and are skipped (not marked checked)
/// without them; HV403/HV404 are purely static.
LintReport lint_flow(const TaskSetRef& view, const sim::SimResult* result,
                     const FlowLintOptions& options = {});
LintReport lint_flow(const sim::TaskGraph& graph, const sim::SimResult& result,
                     const FlowLintOptions& options = {});

struct DeterminismCheckOptions {
  /// Number of seeded tie-permutation re-runs compared against canonical.
  int permutations = 5;
  /// Base seed; permutation k runs with tie_seed = base_seed + k.
  std::uint64_t base_seed = 0x484F4C4D4553ull;  // "HOLMES"
  /// Permutation policy (see sim::TieBreak). The default reorders only
  /// resource-disjoint ties, so any divergence is an executor bug.
  sim::TieBreak tie_break = sim::TieBreak::kPermuteDisjoint;
  /// Cap on diagnostics emitted.
  std::size_t max_diagnostics_per_rule = 8;
  /// Fault timeline active on every run (canonical and permuted alike), so
  /// HV405 checks determinism *of the faulted schedule*. Not owned; must
  /// outlive the call. Null = fault-free.
  const sim::RateTimeline* rates = nullptr;
};

/// Schedule-race rule HV405: simulates `graph` canonically, then under
/// `permutations` seeded tie permutations, and bitwise-compares every task
/// timing, per-resource busy time, and the makespan. Throws ConfigError on
/// a cyclic graph (lint the graph first).
LintReport check_determinism(const sim::TaskGraph& graph,
                             const DeterminismCheckOptions& options = {});

}  // namespace holmes::verify
