#pragma once

/// \file rules.h
/// Registry of every verifier rule: stable id, family, default severity,
/// and documentation. The catalog is the single source of truth — the lint
/// passes reference ids from here, `holmes_cli lint --rules` prints it, and
/// docs/static-analysis.md mirrors it. Ids are never reused or renumbered;
/// retired rules keep their slot.
///
/// Numbering: HV1xx are *plan* lints (ParallelConfig / group layout /
/// partition / memory, checked before graph construction), HV2xx are
/// *graph* lints (structural checks on a built TaskGraph), HV3xx are
/// *execution* lints (conservation checks on a SimResult), HV4xx are *flow*
/// lints (simulation-free bounds on a TaskGraph cross-checked against
/// executed results, the schedule-race determinism check, and the
/// fallback-fabric saturation diagnosis over executed timelines), HV5xx are
/// *fault* lints (fault-plan sanity before injection plus the recovery
/// invariant after it — see core/faults.h and docs/robustness.md).

#include <iosfwd>
#include <string_view>
#include <vector>

#include "verify/diagnostics.h"

namespace holmes::verify {

enum class RuleFamily { kPlan, kGraph, kExecution, kFlow, kFault };

std::string to_string(RuleFamily family);

struct RuleInfo {
  const char* id;            ///< "HV101"
  RuleFamily family;
  Severity default_severity;
  const char* title;         ///< short kebab-case name, e.g. "dp-group-transport"
  const char* detail;        ///< one-sentence description for docs/CLI
};

/// Every registered rule, ascending by id.
const std::vector<RuleInfo>& rule_catalog();

/// Looks a rule up by id; nullptr when unknown.
const RuleInfo* find_rule(std::string_view id);

/// Renders the catalog as the GitHub-flavored markdown table embedded in
/// docs/static-analysis.md between the `<!-- rule-catalog:begin -->` /
/// `<!-- rule-catalog:end -->` markers. `holmes_cli lint --rules --markdown`
/// prints it and CI diffs the docs against it, so the table cannot drift
/// from this registry.
void write_rule_catalog_markdown(std::ostream& out);

// ---- Plan family ----
inline constexpr const char* kRuleDpGroupTransport = "HV101";
inline constexpr const char* kRuleTpGroupLocality = "HV102";
inline constexpr const char* kRuleDpClusterCrossing = "HV103";
inline constexpr const char* kRulePartitionStructure = "HV104";
inline constexpr const char* kRulePartitionSpeedOrder = "HV105";
inline constexpr const char* kRuleMemoryFit = "HV106";
inline constexpr const char* kRuleDegreesConsistent = "HV107";
inline constexpr const char* kRuleNeedlessFallback = "HV108";

// ---- Graph family ----
inline constexpr const char* kRuleGraphAcyclic = "HV201";
inline constexpr const char* kRuleDepsValid = "HV202";
inline constexpr const char* kRuleTaskFields = "HV203";
inline constexpr const char* kRuleSerialOrder = "HV204";
inline constexpr const char* kRuleChannelConservation = "HV205";

// ---- Execution family ----
inline constexpr const char* kRuleTimingMonotone = "HV301";
inline constexpr const char* kRuleResourceExclusive = "HV302";
inline constexpr const char* kRuleResultComplete = "HV303";

// ---- Flow family ----
inline constexpr const char* kRuleFlowChainBound = "HV401";
inline constexpr const char* kRuleFlowResourceBound = "HV402";
inline constexpr const char* kRuleFlowMemoryWatermark = "HV403";
inline constexpr const char* kRuleChannelCutBalance = "HV404";
inline constexpr const char* kRuleScheduleRace = "HV405";
inline constexpr const char* kRuleFabricSaturation = "HV406";

// ---- Fault family ----
inline constexpr const char* kRuleFaultWindowSane = "HV501";
inline constexpr const char* kRuleFaultScopeValid = "HV502";
inline constexpr const char* kRuleCheckpointModelSane = "HV503";
inline constexpr const char* kRuleRecoveryInvariant = "HV504";

}  // namespace holmes::verify
