#include "verify/plan_lints.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <string>

#include "model/memory.h"
#include "util/error.h"
#include "verify/rules.h"

namespace holmes::verify {

namespace {

/// "cluster 'ib0' (InfiniBand, 8 ranks), cluster 'roce0' (RoCE, 8 ranks)"
std::string describe_membership(const net::Topology& topo,
                                const std::vector<int>& ranks) {
  // cluster index -> rank count, in ascending cluster order.
  std::set<int> clusters;
  for (int rank : ranks) clusters.insert(topo.cluster_of(rank));
  std::ostringstream os;
  bool first = true;
  for (int cluster : clusters) {
    const int count = static_cast<int>(
        std::count_if(ranks.begin(), ranks.end(), [&](int rank) {
          return topo.cluster_of(rank) == cluster;
        }));
    if (!first) os << ", ";
    first = false;
    os << "cluster '" << topo.cluster(cluster).name << "' ("
       << net::to_string(topo.cluster(cluster).nic) << ", " << count
       << (count == 1 ? " rank)" : " ranks)");
  }
  return os.str();
}

void lint_dp_transport(const net::Topology& topo, const PlanView& view,
                       LintReport& report) {
  report.mark_checked(kRuleDpGroupTransport);
  const Severity severity =
      view.per_group_transport && !view.ethernet_fallback ? Severity::kError
                                                          : Severity::kWarning;
  const auto& dp_groups = view.groups->dp_groups();
  for (std::size_t i = 0; i < dp_groups.size(); ++i) {
    const std::vector<int>& group = dp_groups[i];
    if (group.size() < 2) continue;
    if (topo.fastest_common_fabric(group) != net::FabricKind::kEthernet) {
      continue;
    }
    // If no member owns an RDMA-capable NIC, Ethernet *is* the best fabric
    // available — nothing was lost.
    const bool any_rdma = std::any_of(group.begin(), group.end(), [&](int r) {
      return topo.device(r).nic != net::NicType::kEthernet;
    });
    if (!any_rdma) continue;
    report.add(kRuleDpGroupTransport, severity, "dp" + std::to_string(i),
               "data-parallel group has no common RDMA fabric — gradient "
               "synchronization degrades to Ethernet; members: " +
                   describe_membership(topo, group));
  }
}

void lint_tp_locality(const net::Topology& topo, const PlanView& view,
                      LintReport& report) {
  report.mark_checked(kRuleTpGroupLocality);
  const auto& tp_groups = view.groups->tp_groups();
  for (std::size_t i = 0; i < tp_groups.size(); ++i) {
    const std::vector<int>& group = tp_groups[i];
    if (group.size() < 2) continue;
    std::set<int> nodes;
    for (int rank : group) nodes.insert(topo.node_of(rank));
    if (nodes.size() <= 1) continue;
    std::ostringstream os;
    os << "tensor-parallel group spans " << nodes.size()
       << " nodes; TP traffic must stay on NVLink/PCIe inside one node";
    report.add(kRuleTpGroupLocality, Severity::kError,
               "tp" + std::to_string(i), os.str());
  }
}

void lint_dp_cluster_crossing(const net::Topology& topo, const PlanView& view,
                              LintReport& report) {
  report.mark_checked(kRuleDpClusterCrossing);
  const auto& dp_groups = view.groups->dp_groups();
  for (std::size_t i = 0; i < dp_groups.size(); ++i) {
    const std::vector<int>& group = dp_groups[i];
    if (group.size() < 2) continue;
    std::set<int> clusters;
    for (int rank : group) clusters.insert(topo.cluster_of(rank));
    if (clusters.size() <= 1) continue;
    report.add(kRuleDpClusterCrossing, Severity::kWarning,
               "dp" + std::to_string(i),
               "data-parallel group crosses cluster boundaries — "
               "cluster-crossing traffic belongs to the pipeline dimension "
               "only; members: " +
                   describe_membership(topo, group));
  }
}

void lint_degrees(const net::Topology& topo, const PlanView& view,
                  LintReport& report) {
  report.mark_checked(kRuleDegreesConsistent);
  const parallel::ParallelConfig& config = view.groups->config();
  if (config.tensor < 1 || config.pipeline < 1 || config.data < 1) {
    report.add(kRuleDegreesConsistent, Severity::kError, config.to_string(),
               "parallelism degrees must all be >= 1");
    return;
  }
  if (config.world() != topo.world_size()) {
    std::ostringstream os;
    os << "t*p*d = " << config.world() << " does not equal the topology's "
       << topo.world_size() << " devices";
    report.add(kRuleDegreesConsistent, Severity::kError, config.to_string(),
               os.str());
  }
  for (int c = 0; c < topo.cluster_count(); ++c) {
    const int gpus = topo.cluster(c).gpus_per_node;
    if (config.tensor > gpus || gpus % config.tensor != 0) {
      std::ostringstream os;
      os << "tensor degree " << config.tensor
         << " does not divide the " << gpus << " GPUs per node of cluster '"
         << topo.cluster(c).name << "'";
      report.add(kRuleDegreesConsistent, Severity::kError, config.to_string(),
                 os.str());
    }
  }
  if (view.micro_batches.has_value() && *view.micro_batches < 1) {
    report.add(kRuleDegreesConsistent, Severity::kError, config.to_string(),
               "plan has " + std::to_string(*view.micro_batches) +
                   " micro-batches per replica; need at least 1");
  }
}

/// Aggregate layers per *physical* stage (virtual stage v runs on v % p).
/// Empty when the partition shape is broken (HV104 reports that).
std::vector<int> physical_layers(const PlanView& view) {
  const int p = view.groups->config().pipeline;
  const std::size_t size = view.partition->size();
  if (size == 0 || size % static_cast<std::size_t>(p) != 0) return {};
  std::vector<int> layers(static_cast<std::size_t>(p), 0);
  for (std::size_t v = 0; v < size; ++v) {
    layers[v % static_cast<std::size_t>(p)] += (*view.partition)[v];
  }
  return layers;
}

void lint_partition_structure(const PlanView& view, LintReport& report) {
  report.mark_checked(kRulePartitionStructure);
  const int p = view.groups->config().pipeline;
  const pipeline::StagePartition& partition = *view.partition;
  if (partition.empty() || partition.size() % static_cast<std::size_t>(p) != 0) {
    std::ostringstream os;
    os << "partition has " << partition.size()
       << " virtual stages, not a positive multiple of the pipeline degree "
       << p;
    report.add(kRulePartitionStructure, Severity::kError, "partition",
               os.str());
    return;
  }
  int sum = 0;
  for (std::size_t v = 0; v < partition.size(); ++v) {
    sum += partition[v];
    if (partition[v] < 1) {
      report.add(kRulePartitionStructure, Severity::kError,
                 "stage" + std::to_string(v),
                 "virtual stage holds " + std::to_string(partition[v]) +
                     " layers; every stage needs at least 1");
    }
  }
  if (view.model != nullptr && sum != view.model->layers) {
    std::ostringstream os;
    os << "partition assigns " << sum << " layers but the model has "
       << view.model->layers;
    report.add(kRulePartitionStructure, Severity::kError, "partition",
               os.str());
  }
}

void lint_partition_speed_order(const PlanView& view, LintReport& report) {
  report.mark_checked(kRulePartitionSpeedOrder);
  const std::vector<int> layers = physical_layers(view);
  if (layers.empty()) return;  // shape broken; HV104 already fired
  const std::vector<net::NicType>& nics = *view.stage_nics;
  constexpr int kMaxFindings = 4;
  int findings = 0;
  for (std::size_t a = 0; a < layers.size() && findings < kMaxFindings; ++a) {
    for (std::size_t b = 0; b < layers.size() && findings < kMaxFindings;
         ++b) {
      const double speed_a = view.speeds.of(nics[a]);
      const double speed_b = view.speeds.of(nics[b]);
      if (speed_a > speed_b && layers[a] < layers[b]) {
        std::ostringstream os;
        os << "stage " << a << " (" << net::to_string(nics[a]) << ", "
           << layers[a] << " layers) received fewer layers than stage " << b
           << " (" << net::to_string(nics[b]) << ", " << layers[b]
           << " layers) although its NIC trains faster — inverts Eq. (2)";
        report.add(kRulePartitionSpeedOrder, Severity::kWarning,
                   "stage" + std::to_string(a), os.str());
        ++findings;
      }
    }
  }
}

void lint_memory_fit(const PlanView& view, LintReport& report) {
  report.mark_checked(kRuleMemoryFit);
  const std::vector<int> layers = physical_layers(view);
  if (layers.empty()) return;
  const parallel::ParallelConfig& config = view.groups->config();
  for (std::size_t s = 0; s < layers.size(); ++s) {
    const model::MemoryEstimate est = model::estimate_device_memory(
        *view.model, layers[s], config.tensor, view.micro_batch_size,
        std::min(config.pipeline, 8), view.optimizer_shards, {},
        view.weight_shards);
    if (est.total() <= view.device_memory) continue;
    std::ostringstream os;
    os << "estimated " << format_bytes(est.total()) << " per device ("
       << layers[s] << " layers) exceeds the " << format_bytes(view.device_memory)
       << " budget";
    report.add(kRuleMemoryFit, Severity::kError, "stage" + std::to_string(s),
               os.str());
  }
}

void lint_needless_fallback(const net::Topology& topo, const PlanView& view,
                            LintReport& report) {
  report.mark_checked(kRuleNeedlessFallback);
  if (!view.ethernet_fallback) return;
  if (topo.cluster_count() != 1) return;
  const net::NicType nic = topo.cluster(0).nic;
  if (nic == net::NicType::kEthernet) return;
  report.add(kRuleNeedlessFallback, Severity::kWarning, "transport",
             "global Ethernet fallback engaged on a single homogeneous " +
                 net::to_string(nic) +
                 " cluster — RDMA is forfeited for no compatibility reason");
}

}  // namespace

LintReport lint_plan(const net::Topology& topo, const PlanView& view) {
  HOLMES_CHECK_MSG(view.groups != nullptr, "PlanView needs groups");
  LintReport report;
  lint_dp_transport(topo, view, report);
  lint_tp_locality(topo, view, report);
  lint_dp_cluster_crossing(topo, view, report);
  lint_degrees(topo, view, report);
  if (view.partition != nullptr) {
    lint_partition_structure(view, report);
    if (view.stage_nics != nullptr &&
        view.stage_nics->size() ==
            static_cast<std::size_t>(view.groups->config().pipeline) &&
        !view.ethernet_fallback) {
      lint_partition_speed_order(view, report);
    }
    if (view.model != nullptr && view.micro_batch_size > 0) {
      lint_memory_fit(view, report);
    }
  }
  lint_needless_fallback(topo, view, report);
  return report;
}

}  // namespace holmes::verify
