#include "verify/flow_lints.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <utility>

#include "util/error.h"
#include "verify/rules.h"

namespace holmes::verify {

namespace {

using sim::ResourceId;
using sim::Task;
using sim::TaskId;
using sim::TaskKind;

std::string resource_name(const TaskSetRef& view, ResourceId id) {
  if (view.graph != nullptr && id >= 0 &&
      static_cast<std::size_t>(id) < view.resource_count) {
    return view.graph->resource_name(id);
  }
  return "r" + std::to_string(id);
}

std::string channel_name(const TaskSetRef& view, sim::ChannelId id) {
  if (view.graph != nullptr && id >= 0 &&
      static_cast<std::size_t>(id) < view.channel_count) {
    return view.graph->channel_name(id);
  }
  return "ch" + std::to_string(id);
}

std::string task_subject(const TaskSetRef& view, std::size_t id) {
  const Task& task = (*view.tasks)[id];
  std::string subject = "task " + std::to_string(id);
  if (!task.label.empty()) subject += " '" + task.label + "'";
  return subject;
}

bool resource_ok(const TaskSetRef& view, ResourceId id) {
  return id >= 0 && static_cast<std::size_t>(id) < view.resource_count;
}

/// Strips a trailing ".tx"/".rx" so a port collapses to its endpoint.
std::string endpoint_of(const std::string& port) {
  if (port.size() > 3) {
    const std::string suffix = port.substr(port.size() - 3);
    if (suffix == ".tx" || suffix == ".rx") {
      return port.substr(0, port.size() - 3);
    }
  }
  return port;
}

/// The minimum wall-clock span a task occupies regardless of schedule.
/// Malformed negative costs (HV203's findings) clamp to zero so the chain
/// stays a valid lower bound.
double min_span_of(const Task& task) {
  switch (task.kind) {
    case TaskKind::kCompute:
      return std::max(0.0, task.duration);
    case TaskKind::kTransfer: {
      const double serialization =
          task.bytes > 0 && task.bandwidth > 0
              ? static_cast<double>(task.bytes) / task.bandwidth
              : 0.0;
      return serialization + std::max(0.0, task.latency);
    }
    case TaskKind::kNoop:
      return 0.0;
  }
  return 0.0;
}

/// Serialization time a transfer occupies its ports for.
double serialization_of(const Task& task) {
  return task.bytes > 0 && task.bandwidth > 0
             ? static_cast<double>(task.bytes) / task.bandwidth
             : 0.0;
}

/// a >= b, up to relative/absolute tolerance.
bool ge(double a, double b, double tolerance) {
  const double eps = tolerance * std::max({1.0, std::fabs(a), std::fabs(b)});
  return a >= b - eps;
}

bool near(double a, double b, double tolerance) {
  return ge(a, b, tolerance) && ge(b, a, tolerance);
}

/// Kahn topological order; empty when deps are malformed or cyclic.
std::vector<std::size_t> topo_order(const TaskSetRef& view) {
  const std::size_t n = view.tasks->size();
  std::vector<std::size_t> indegree(n, 0);
  std::vector<std::vector<std::size_t>> dependents(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (TaskId dep : view.deps(i)) {
      if (dep < 0 || static_cast<std::size_t>(dep) >= n ||
          static_cast<std::size_t>(dep) == i) {
        return {};  // HV202's findings; flow bounds would be garbage
      }
      indegree[i] += 1;
      dependents[static_cast<std::size_t>(dep)].push_back(i);
    }
  }
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) frontier.push_back(i);
  }
  while (!frontier.empty()) {
    const std::size_t id = frontier.back();
    frontier.pop_back();
    order.push_back(id);
    for (std::size_t next : dependents[id]) {
      if (--indegree[next] == 0) frontier.push_back(next);
    }
  }
  if (order.size() != n) return {};  // cyclic: HV201's finding
  return order;
}

std::string format_seconds(double s) {
  std::ostringstream os;
  os.precision(12);
  os << s;
  return os.str();
}

}  // namespace

FlowAnalysis analyze_flow(const TaskSetRef& view) {
  HOLMES_CHECK_MSG(view.tasks != nullptr, "TaskSetRef needs tasks");
  FlowAnalysis analysis;
  const std::size_t n = view.tasks->size();
  const std::vector<std::size_t> order = topo_order(view);
  if (n > 0 && order.empty()) return analysis;  // malformed or cyclic
  analysis.valid = true;
  analysis.resource_load_s.assign(view.resource_count, 0.0);

  // Longest chain through declared costs: dist[i] = span(i) + max dist[dep].
  std::vector<double> dist(n, 0.0);
  std::vector<TaskId> best_pred(n, sim::kInvalidTask);
  std::size_t chain_tail = 0;
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const std::size_t i = order[pos];
    const Task& task = (*view.tasks)[i];
    double longest_dep = 0.0;
    TaskId pred = sim::kInvalidTask;
    for (TaskId dep : view.deps(i)) {
      const double d = dist[static_cast<std::size_t>(dep)];
      if (pred == sim::kInvalidTask || d > longest_dep ||
          (d == longest_dep && dep < pred)) {
        longest_dep = d;
        pred = dep;
      }
    }
    dist[i] = longest_dep + min_span_of(task);
    best_pred[i] = pred;
    if (dist[i] > analysis.chain_bound_s) {
      analysis.chain_bound_s = dist[i];
      chain_tail = i;
    }

    // Aggregate occupancy, mirroring the executor's busy accounting.
    switch (task.kind) {
      case TaskKind::kCompute:
        if (resource_ok(view, task.resource)) {
          analysis.resource_load_s[static_cast<std::size_t>(task.resource)] +=
              std::max(0.0, task.duration);
        }
        break;
      case TaskKind::kTransfer: {
        const double serialization = serialization_of(task);
        if (resource_ok(view, task.src_port)) {
          analysis.resource_load_s[static_cast<std::size_t>(task.src_port)] +=
              serialization;
        }
        if (resource_ok(view, task.dst_port) &&
            task.dst_port != task.src_port) {
          analysis.resource_load_s[static_cast<std::size_t>(task.dst_port)] +=
              serialization;
        }
        break;
      }
      case TaskKind::kNoop:
        break;
    }
  }
  if (analysis.chain_bound_s > 0) {
    for (TaskId id = static_cast<TaskId>(chain_tail); id != sim::kInvalidTask;
         id = best_pred[static_cast<std::size_t>(id)]) {
      analysis.chain.push_back(id);
    }
    std::reverse(analysis.chain.begin(), analysis.chain.end());
  }

  for (std::size_t r = 0; r < analysis.resource_load_s.size(); ++r) {
    if (analysis.resource_load_s[r] > analysis.resource_bound_s) {
      analysis.resource_bound_s = analysis.resource_load_s[r];
      analysis.busiest_resource = static_cast<ResourceId>(r);
    }
  }
  analysis.makespan_bound_s =
      std::max(analysis.chain_bound_s, analysis.resource_bound_s);

  // In-flight receive-buffer watermark over topological cuts. A transfer's
  // bytes occupy the destination endpoint from the transfer's topological
  // position through its last dependent's; the peak of the sweep is a lower
  // bound on the buffer any admissible schedule needs.
  std::vector<std::size_t> pos_of(n, 0);
  for (std::size_t pos = 0; pos < order.size(); ++pos) pos_of[order[pos]] = pos;
  std::vector<std::size_t> last_use(n, 0);
  for (std::size_t i = 0; i < n; ++i) last_use[i] = pos_of[i];
  for (std::size_t i = 0; i < n; ++i) {
    for (TaskId dep : view.deps(i)) {
      auto& lu = last_use[static_cast<std::size_t>(dep)];
      lu = std::max(lu, pos_of[i]);
    }
  }
  // endpoint -> topo position -> byte delta
  std::map<std::string, std::map<std::size_t, Bytes>> deltas;
  for (std::size_t i = 0; i < n; ++i) {
    const Task& task = (*view.tasks)[i];
    if (task.kind != TaskKind::kTransfer || task.bytes <= 0) continue;
    if (!resource_ok(view, task.dst_port)) continue;
    auto& per_pos = deltas[endpoint_of(resource_name(view, task.dst_port))];
    per_pos[pos_of[i]] += task.bytes;
    per_pos[last_use[i] + 1] -= task.bytes;
  }
  for (const auto& [endpoint, per_pos] : deltas) {
    Bytes live = 0;
    Bytes peak = 0;
    for (const auto& [pos, delta] : per_pos) {
      live += delta;
      peak = std::max(peak, live);
    }
    analysis.watermarks.push_back({endpoint, peak});
  }
  return analysis;
}

FlowAnalysis analyze_flow(const sim::TaskGraph& graph) {
  return analyze_flow(as_ref(graph));
}

LintReport lint_flow(const TaskSetRef& view, const sim::SimResult* result,
                     const FlowLintOptions& options) {
  HOLMES_CHECK_MSG(view.tasks != nullptr, "TaskSetRef needs tasks");
  LintReport report;
  const FlowAnalysis analysis = analyze_flow(view);
  if (!analysis.valid) return report;  // HV201/HV202 own broken graphs

  const bool have_result =
      result != nullptr && result->timings().size() == view.tasks->size();

  if (have_result) {
    // HV401: the critical chain is a makespan lower bound.
    report.mark_checked(kRuleFlowChainBound);
    if (!ge(result->makespan(), analysis.chain_bound_s, options.tolerance)) {
      std::ostringstream os;
      os << "critical chain needs " << format_seconds(analysis.chain_bound_s)
         << " s but the simulated makespan is only "
         << format_seconds(result->makespan()) << " s";
      if (!analysis.chain.empty()) {
        os << "; chain ends at "
           << task_subject(view,
                           static_cast<std::size_t>(analysis.chain.back()));
      }
      report.add(kRuleFlowChainBound, Severity::kError, "graph", os.str());
    }

    // HV402: no serial resource can fit its aggregate work in less than
    // that work's sum, and the static aggregate must agree with what the
    // executor accounted.
    report.mark_checked(kRuleFlowResourceBound);
    std::size_t findings = 0;
    auto emit = [&](ResourceId r, const std::string& message) {
      if (findings < options.max_diagnostics_per_rule) {
        report.add(kRuleFlowResourceBound, Severity::kError,
                   "resource '" + resource_name(view, r) + "'", message);
      }
      ++findings;
    };
    for (std::size_t r = 0; r < analysis.resource_load_s.size(); ++r) {
      const double load = analysis.resource_load_s[r];
      const auto id = static_cast<ResourceId>(r);
      if (!ge(result->makespan(), load, options.tolerance)) {
        emit(id, "aggregate declared occupancy " + format_seconds(load) +
                     " s exceeds the simulated makespan " +
                     format_seconds(result->makespan()) + " s");
      }
      const double busy = result->resource_busy(id);
      // Under an active fault timeline the executor legitimately accounts
      // more busy time than the static load (degraded resources stretch
      // occupancy); only below-load accounting is impossible then.
      const bool busy_ok = options.allow_stretched
                               ? ge(busy, load, options.tolerance)
                               : near(load, busy, options.tolerance);
      if (!busy_ok) {
        emit(id, "static aggregate occupancy " + format_seconds(load) +
                     " s disagrees with the executor's accounted busy time " +
                     format_seconds(busy) + " s" +
                     (options.allow_stretched ? " (stretching tolerated)"
                                              : ""));
      }
    }
  }

  // HV403: in-flight receive bytes vs the per-device buffer budget.
  if (options.buffer_budget > 0) {
    report.mark_checked(kRuleFlowMemoryWatermark);
    std::size_t findings = 0;
    for (const FlowAnalysis::EndpointWatermark& wm : analysis.watermarks) {
      if (wm.peak_bytes <= options.buffer_budget) continue;
      if (findings < options.max_diagnostics_per_rule) {
        std::ostringstream os;
        os << "peak in-flight received bytes " << wm.peak_bytes
           << " exceed the " << options.buffer_budget
           << "-byte buffer budget under every admissible schedule";
        report.add(kRuleFlowMemoryWatermark, Severity::kWarning,
                   "endpoint '" + wm.endpoint + "'", os.str());
      }
      ++findings;
    }
  }

  // HV404: byte balance across each cluster cut, per closed channel.
  if (!options.resource_cluster.empty() && view.channel_count > 0) {
    report.mark_checked(kRuleChannelCutBalance);
    auto cluster_of = [&](ResourceId r) -> int {
      if (r < 0 ||
          static_cast<std::size_t>(r) >= options.resource_cluster.size()) {
        return -1;
      }
      return options.resource_cluster[static_cast<std::size_t>(r)];
    };
    struct Flow {
      Bytes tx = 0;
      Bytes rx = 0;
      bool sends = false;
      bool receives = false;
    };
    struct CutFlow {
      Bytes forward = 0;   ///< bytes lo-cluster -> hi-cluster
      Bytes backward = 0;  ///< bytes hi-cluster -> lo-cluster
    };
    // channel -> endpoint -> flow (for closedness), and
    // channel -> unordered cluster pair (lo, hi) -> both directions' bytes.
    std::vector<std::map<std::string, Flow>> flows(view.channel_count);
    std::vector<std::map<std::pair<int, int>, CutFlow>> cut(view.channel_count);
    for (const Task& task : *view.tasks) {
      if (task.kind != TaskKind::kTransfer) continue;
      if (task.channel == sim::kInvalidChannel || task.channel < 0 ||
          static_cast<std::size_t>(task.channel) >= view.channel_count) {
        continue;
      }
      if (!resource_ok(view, task.src_port) ||
          !resource_ok(view, task.dst_port)) {
        continue;  // HV203 reports these
      }
      const auto c = static_cast<std::size_t>(task.channel);
      Flow& src = flows[c][endpoint_of(resource_name(view, task.src_port))];
      src.tx += task.bytes;
      src.sends = true;
      Flow& dst = flows[c][endpoint_of(resource_name(view, task.dst_port))];
      dst.rx += task.bytes;
      dst.receives = true;
      const int a = cluster_of(task.src_port);
      const int b = cluster_of(task.dst_port);
      if (a >= 0 && b >= 0 && a != b) {
        CutFlow& cf = cut[c][{std::min(a, b), std::max(a, b)}];
        (a < b ? cf.forward : cf.backward) += task.bytes;
      }
    }
    std::size_t findings = 0;
    for (std::size_t c = 0; c < flows.size(); ++c) {
      if (cut[c].empty()) continue;
      const auto& per_endpoint = flows[c];
      const bool closed = per_endpoint.size() >= 2 &&
                          std::all_of(per_endpoint.begin(), per_endpoint.end(),
                                      [](const auto& kv) {
                                        return kv.second.sends &&
                                               kv.second.receives;
                                      });
      if (!closed) continue;
      for (const auto& [pair, cf] : cut[c]) {
        const auto [a, b] = pair;
        if (cf.forward == cf.backward) continue;
        if (findings < options.max_diagnostics_per_rule) {
          std::ostringstream os;
          os << "cluster cut " << a << "<->" << b << " moves " << cf.forward
             << " bytes forward but " << cf.backward
             << " back on a closed channel — the cut is unbalanced";
          report.add(kRuleChannelCutBalance, Severity::kWarning,
                     "channel " +
                         channel_name(view, static_cast<sim::ChannelId>(c)),
                     os.str());
        }
        ++findings;
      }
    }
  }
  return report;
}

LintReport lint_flow(const sim::TaskGraph& graph, const sim::SimResult& result,
                     const FlowLintOptions& options) {
  return lint_flow(as_ref(graph), &result, options);
}

LintReport check_determinism(const sim::TaskGraph& graph,
                             const DeterminismCheckOptions& options) {
  LintReport report;
  report.mark_checked(kRuleScheduleRace);
  sim::ExecutorOptions canonical;
  canonical.rates = options.rates;
  const sim::SimResult baseline = sim::TaskGraphExecutor{canonical}.run(graph);
  std::size_t findings = 0;
  for (int k = 0; k < options.permutations; ++k) {
    sim::ExecutorOptions exec;
    exec.tie_break = options.tie_break;
    exec.tie_seed = options.base_seed + static_cast<std::uint64_t>(k);
    exec.rates = options.rates;
    const sim::SimResult permuted = sim::TaskGraphExecutor{exec}.run(graph);

    // Bitwise comparison: identical placement arithmetic in identical order
    // yields identical doubles, so any difference at all is a divergence.
    TaskId first_diverging = sim::kInvalidTask;
    for (std::size_t i = 0; i < graph.task_count(); ++i) {
      const sim::TaskTiming& a = baseline.timings()[i];
      const sim::TaskTiming& b = permuted.timings()[i];
      if (a.start != b.start || a.finish != b.finish) {
        first_diverging = static_cast<TaskId>(i);
        break;
      }
    }
    bool busy_diverged = false;
    for (std::size_t r = 0; r < graph.resource_count(); ++r) {
      const auto id = static_cast<sim::ResourceId>(r);
      if (baseline.resource_busy(id) != permuted.resource_busy(id)) {
        busy_diverged = true;
        break;
      }
    }
    if (first_diverging == sim::kInvalidTask && !busy_diverged &&
        baseline.makespan() == permuted.makespan()) {
      continue;
    }
    if (findings < options.max_diagnostics_per_rule) {
      std::ostringstream os;
      os << "results diverge under tie permutation seed " << exec.tie_seed;
      std::string subject = "graph";
      if (first_diverging != sim::kInvalidTask) {
        const auto i = static_cast<std::size_t>(first_diverging);
        const TaskSetRef view = as_ref(graph);
        subject = task_subject(view, i);
        os << ": first diverging task starts at "
           << format_seconds(baseline.timings()[i].start)
           << " s canonically but "
           << format_seconds(permuted.timings()[i].start)
           << " s permuted";
      } else if (busy_diverged) {
        os << ": per-resource busy time differs";
      } else {
        os << ": makespan " << format_seconds(baseline.makespan())
           << " s became " << format_seconds(permuted.makespan()) << " s";
      }
      report.add(kRuleScheduleRace, Severity::kError, subject, os.str());
    }
    ++findings;
  }
  return report;
}

}  // namespace holmes::verify
