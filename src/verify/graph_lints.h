#pragma once

/// \file graph_lints.h
/// Graph-family (HV2xx) and execution-family (HV3xx) lints.
///
/// Graph lints are structural checks on a built task graph: acyclicity,
/// dangling dependencies, per-kind field consistency, per-device
/// serial-order deadlock detection (deps vs declared program order), and
/// bytes-in == bytes-out conservation per collective channel.
///
/// Execution lints audit a finished sim::SimResult against the graph:
/// monotone timings that honor dependencies and declared costs, exclusive
/// occupancy of every serial resource, and completeness of the result.
///
/// The passes deliberately re-derive everything from the Task records
/// rather than trusting TaskGraph's construction-time checks — the point of
/// the verifier is to survive refactors that bypass or weaken those checks.
/// The TaskSetRef view makes that testable: known-bad fixtures are raw
/// `std::vector<sim::Task>` values that the TaskGraph API would refuse to
/// build.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "sim/executor.h"
#include "sim/task_graph.h"
#include "verify/diagnostics.h"

namespace holmes::verify {

/// Non-owning view of a task set. `graph` is optional and used only to
/// resolve resource/channel names for subjects and the HV205 endpoint
/// pairing; when absent, synthetic names ("r7", "ch2") are used.
struct TaskSetRef {
  const std::vector<sim::Task>* tasks = nullptr;
  std::size_t resource_count = 0;
  std::size_t channel_count = 0;
  const sim::TaskGraph* graph = nullptr;

  /// Dependencies of task `i`: a TaskGraph stores them in its flat edge
  /// list (Task::deps stays empty there), raw fixtures carry them on the
  /// Task records themselves.
  std::span<const sim::TaskId> deps(std::size_t i) const {
    if (graph != nullptr) return graph->deps(static_cast<sim::TaskId>(i));
    return (*tasks)[i].deps;
  }
};

/// View over a real TaskGraph.
TaskSetRef as_ref(const sim::TaskGraph& graph);

struct GraphLintOptions {
  /// Resources whose task creation order is the intended serial program
  /// order (device compute engines). HV204 checks that deps plus that
  /// program order are jointly acyclic; empty skips the rule.
  std::vector<sim::ResourceId> serial_programs;
  /// Relative tolerance for floating-point timing comparisons.
  double tolerance = 1e-9;
  /// Cap on diagnostics emitted per rule (the first violations are the
  /// informative ones; a broken 100k-task graph should not produce 100k
  /// diagnostics).
  std::size_t max_diagnostics_per_rule = 8;
};

/// Structural rules HV201..HV205.
LintReport lint_graph(const TaskSetRef& view, const GraphLintOptions& options = {});
LintReport lint_graph(const sim::TaskGraph& graph,
                      const GraphLintOptions& options = {});

/// Execution rules HV301..HV303 over a finished run.
LintReport lint_execution(const TaskSetRef& view, const sim::SimResult& result,
                          const GraphLintOptions& options = {});
LintReport lint_execution(const sim::TaskGraph& graph,
                          const sim::SimResult& result,
                          const GraphLintOptions& options = {});

}  // namespace holmes::verify
