#pragma once

/// \file diagnostics.h
/// Diagnostics primitives of the static verifier (`holmes_verify`).
///
/// A lint pass produces a LintReport: an ordered list of Diagnostics, each
/// carrying a stable rule id ("HV101"), a severity, a *subject* attributing
/// the finding to a concrete entity (a parallel group "dp3", a task
/// "task 42 'bwd'", a resource "gpu0.compute", a channel "dp0"), and a
/// human-readable message. Reports from several passes merge; the final
/// verdict is pass unless at least one error-severity diagnostic fired.
///
/// Output comes in two forms mirroring the observability subsystem's
/// conventions: a text rendering for terminals and a byte-stable JSON
/// document (`holmes.lint_report.v1`) for CI and tooling.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/build_info.h"

namespace holmes::verify {

enum class Severity {
  kNote = 0,     ///< informational; never affects the verdict
  kWarning = 1,  ///< suspicious but possibly deliberate (baselines, ablations)
  kError = 2,    ///< invariant violated; simulation results would be wrong
};

std::string to_string(Severity severity);

struct Diagnostic {
  std::string rule;     ///< stable rule id, e.g. "HV101"
  Severity severity = Severity::kNote;
  std::string subject;  ///< offending entity, e.g. "dp3" or "task 42 'bwd'"
  std::string message;  ///< explanation, one sentence
};

/// Accumulates diagnostics plus the set of rules that actually ran (a rule
/// that could not run for lack of inputs — e.g. a partition lint on a plan
/// with no partition — is *not* marked checked, so consumers can tell
/// "clean" from "not examined").
class LintReport {
 public:
  void add(std::string rule, Severity severity, std::string subject,
           std::string message);

  /// Records that `rule` was evaluated (idempotent).
  void mark_checked(std::string rule);

  /// Appends another report's diagnostics and checked-rule set.
  void merge(const LintReport& other);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  const std::vector<std::string>& rules_checked() const { return checked_; }

  std::size_t count(Severity severity) const;
  /// True when no error-severity diagnostic fired.
  bool ok() const { return count(Severity::kError) == 0; }
  /// True when no diagnostic of any severity fired.
  bool clean() const { return diagnostics_.empty(); }
  /// True when at least one diagnostic of `rule` fired.
  bool fired(std::string_view rule) const;

  /// Strict mode: every warning becomes an error (CI walls, `lint --strict`).
  void promote_warnings();

 private:
  std::vector<Diagnostic> diagnostics_;
  std::vector<std::string> checked_;
};

/// Renders the report for terminals: one line per diagnostic plus a summary
/// line ("checked 16 rules: 1 error, 2 warnings, 0 notes").
void print_text(std::ostream& out, const LintReport& report);

inline constexpr const char* kLintReportSchema = "holmes.lint_report.v1";

/// Writes the report as a single stable JSON object (no trailing newline):
/// schema, verdict, severity counts, the checked-rule list, and every
/// diagnostic in firing order. Keys are emitted in fixed order so output is
/// byte-stable for fixed inputs.
void write_json(std::ostream& out, const LintReport& report);

/// Same document stamped with the build fingerprint right after "schema",
/// matching `holmes.bench_suite.v1` — this is what `holmes_cli lint --json`
/// emits, so a CI lint artifact records what binary produced it. The
/// unstamped overload stays for byte-stable golden tests.
void write_json(std::ostream& out, const LintReport& report,
                const BuildInfo& fingerprint);

}  // namespace holmes::verify
