#pragma once

/// \file plan_lints.h
/// Plan-family lints (HV1xx): static checks over a parallel-group layout,
/// a stage partition, and a topology *before* any task graph is built.
///
/// The pass operates on a PlanView — a non-owning bundle of the layout
/// pieces — rather than on core::TrainingPlan directly, so the verifier
/// stays below `core` in the layering (core wires the adapter, see
/// core/preflight.h) and hand-built layouts in tests and tools can be
/// linted without a Planner.
///
/// Rules (see verify/rules.h for the catalog):
///  - HV101 dp-group-transport: every data-parallel group whose members own
///    RDMA-capable NICs must share a common RDMA fabric (paper §3.2,
///    Automatic NIC Selection). Severity is error when the plan relies on
///    per-group transport selection (Holmes), warning when the plan
///    deliberately runs the global Ethernet fallback (baselines).
///  - HV102 tp-group-locality: tensor groups stay inside one node.
///  - HV103 dp-cluster-crossing: DP groups stay inside one cluster
///    (cluster-crossing belongs to the pipeline dimension only).
///  - HV104 partition-structure, HV105 partition-speed-order (Eq. 2),
///    HV106 memory-fit, HV107 degrees-consistent, HV108 needless-fallback.

#include <cstdint>
#include <optional>
#include <vector>

#include "model/transformer.h"
#include "net/topology.h"
#include "parallel/groups.h"
#include "pipeline/partition.h"
#include "util/units.h"
#include "verify/diagnostics.h"

namespace holmes::verify {

/// Non-owning view of the planning decisions under lint. `groups` is
/// required; every other field is optional — rules whose inputs are missing
/// are skipped (and not marked checked).
struct PlanView {
  const parallel::ParallelGroups* groups = nullptr;

  /// Layers per virtual stage (size = pipeline degree * chunks).
  const pipeline::StagePartition* partition = nullptr;
  /// Effective NIC per *physical* stage (size = pipeline degree).
  const std::vector<net::NicType>* stage_nics = nullptr;
  /// Model architecture, for layer-sum and memory checks.
  const model::TransformerConfig* model = nullptr;

  int micro_batch_size = 0;  ///< 0: unknown (skips memory check)
  /// Micro-batches per pipeline replica; nullopt: unknown (skips the >= 1
  /// check in HV107).
  std::optional<std::int64_t> micro_batches;

  /// True when all inter-node traffic deliberately rides Ethernet (the
  /// NIC-oblivious baselines in a heterogeneous job).
  bool ethernet_fallback = false;
  /// True when the plan selects transports per communicator group (Holmes'
  /// Automatic NIC Selection) — a non-RDMA DP group is then an error, not a
  /// known cost.
  bool per_group_transport = false;

  int optimizer_shards = 1;  ///< d when the DP strategy shards optimizer state
  int weight_shards = 1;     ///< d only for ZeRO-3/FSDP
  Bytes device_memory = 80LL * 1024 * 1024 * 1024;  ///< paper's 80 GB A100

  /// Eq. (2) speed table for the partition-order check.
  pipeline::StageSpeeds speeds = {};
};

/// Runs every plan-family rule whose inputs are present.
LintReport lint_plan(const net::Topology& topo, const PlanView& view);

}  // namespace holmes::verify
