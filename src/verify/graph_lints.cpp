#include "verify/graph_lints.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <string>

#include "util/error.h"
#include "verify/rules.h"

namespace holmes::verify {

namespace {

using sim::ResourceId;
using sim::Task;
using sim::TaskId;
using sim::TaskKind;

std::string resource_name(const TaskSetRef& view, ResourceId id) {
  if (view.graph != nullptr && id >= 0 &&
      static_cast<std::size_t>(id) < view.resource_count) {
    return view.graph->resource_name(id);
  }
  return "r" + std::to_string(id);
}

std::string channel_name(const TaskSetRef& view, sim::ChannelId id) {
  if (view.graph != nullptr && id >= 0 &&
      static_cast<std::size_t>(id) < view.channel_count) {
    return view.graph->channel_name(id);
  }
  return "ch" + std::to_string(id);
}

std::string task_subject(const TaskSetRef& view, std::size_t id) {
  const Task& task = (*view.tasks)[id];
  std::string subject = "task " + std::to_string(id);
  if (!task.label.empty()) subject += " '" + task.label + "'";
  return subject;
}

bool resource_ok(const TaskSetRef& view, ResourceId id) {
  return id >= 0 && static_cast<std::size_t>(id) < view.resource_count;
}

/// Serialization time a transfer occupies its ports for.
SimTime serialization_of(const Task& task) {
  return task.bytes > 0 && task.bandwidth > 0
             ? static_cast<double>(task.bytes) / task.bandwidth
             : 0.0;
}

/// True when every dep id of every task is a valid, distinct task id.
/// HV202. Returns validity so dependent rules can skip on broken ids.
bool lint_deps_valid(const TaskSetRef& view, const GraphLintOptions& options,
                     LintReport& report) {
  report.mark_checked(kRuleDepsValid);
  const std::size_t n = view.tasks->size();
  std::size_t findings = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (TaskId dep : view.deps(i)) {
      const bool dangling = dep < 0 || static_cast<std::size_t>(dep) >= n;
      const bool self = !dangling && static_cast<std::size_t>(dep) == i;
      if (!dangling && !self) continue;
      if (findings < options.max_diagnostics_per_rule) {
        report.add(kRuleDepsValid, Severity::kError, task_subject(view, i),
                   dangling ? "depends on task id " + std::to_string(dep) +
                                  " which does not exist (dangling edge)"
                            : "depends on itself");
      }
      ++findings;
    }
  }
  return findings == 0;
}

/// Kahn's algorithm over deps plus `extra` edges (from -> to pairs).
/// Returns ids that never became ready (empty means acyclic).
std::vector<std::size_t> stuck_tasks(
    const TaskSetRef& view,
    const std::vector<std::pair<std::size_t, std::size_t>>& extra) {
  const std::size_t n = view.tasks->size();
  std::vector<std::size_t> indegree(n, 0);
  std::vector<std::vector<std::size_t>> dependents(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (TaskId dep : view.deps(i)) {
      indegree[i] += 1;
      dependents[static_cast<std::size_t>(dep)].push_back(i);
    }
  }
  for (const auto& [from, to] : extra) {
    indegree[to] += 1;
    dependents[from].push_back(to);
  }
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) frontier.push_back(i);
  }
  std::size_t completed = 0;
  while (!frontier.empty()) {
    const std::size_t id = frontier.back();
    frontier.pop_back();
    ++completed;
    for (std::size_t next : dependents[id]) {
      if (--indegree[next] == 0) frontier.push_back(next);
    }
  }
  std::vector<std::size_t> stuck;
  if (completed == n) return stuck;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] > 0) stuck.push_back(i);
  }
  return stuck;
}

std::string sample_tasks(const TaskSetRef& view,
                         const std::vector<std::size_t>& ids,
                         std::size_t limit) {
  std::ostringstream os;
  for (std::size_t i = 0; i < ids.size() && i < limit; ++i) {
    if (i > 0) os << ", ";
    os << task_subject(view, ids[i]);
  }
  if (ids.size() > limit) os << ", ...";
  return os.str();
}

void lint_acyclic(const TaskSetRef& view, const GraphLintOptions& options,
                  LintReport& report) {
  report.mark_checked(kRuleGraphAcyclic);
  const std::vector<std::size_t> stuck = stuck_tasks(view, {});
  if (stuck.empty()) return;
  std::ostringstream os;
  os << "dependency cycle: " << stuck.size()
     << " tasks can never become ready ("
     << sample_tasks(view, stuck, options.max_diagnostics_per_rule) << ")";
  report.add(kRuleGraphAcyclic, Severity::kError, "graph", os.str());
}

void lint_task_fields(const TaskSetRef& view, const GraphLintOptions& options,
                      LintReport& report) {
  report.mark_checked(kRuleTaskFields);
  std::size_t findings = 0;
  auto emit = [&](std::size_t id, const std::string& message) {
    if (findings < options.max_diagnostics_per_rule) {
      report.add(kRuleTaskFields, Severity::kError, task_subject(view, id),
                 message);
    }
    ++findings;
  };
  for (std::size_t i = 0; i < view.tasks->size(); ++i) {
    const Task& task = (*view.tasks)[i];
    switch (task.kind) {
      case TaskKind::kCompute:
        if (!resource_ok(view, task.resource)) {
          emit(i, "compute task references unknown resource " +
                      std::to_string(task.resource));
        }
        if (task.duration < 0) emit(i, "compute task has negative duration");
        break;
      case TaskKind::kTransfer:
        if (!resource_ok(view, task.src_port)) {
          emit(i, "transfer references unknown TX port " +
                      std::to_string(task.src_port));
        }
        if (!resource_ok(view, task.dst_port)) {
          emit(i, "transfer references unknown RX port " +
                      std::to_string(task.dst_port));
        }
        if (resource_ok(view, task.src_port) && task.src_port == task.dst_port) {
          emit(i, "transfer TX and RX port are the same resource '" +
                      resource_name(view, task.src_port) + "'");
        }
        if (task.bytes < 0) emit(i, "transfer moves a negative byte count");
        if (task.bytes > 0 && task.bandwidth <= 0) {
          emit(i, "non-empty transfer has no positive bandwidth");
        }
        if (task.latency < 0) emit(i, "transfer has negative latency");
        if (task.channel != sim::kInvalidChannel &&
            (task.channel < 0 ||
             static_cast<std::size_t>(task.channel) >= view.channel_count)) {
          emit(i, "transfer references unknown channel " +
                      std::to_string(task.channel));
        }
        break;
      case TaskKind::kNoop:
        break;
    }
  }
}

void lint_serial_order(const TaskSetRef& view, const GraphLintOptions& options,
                       LintReport& report) {
  if (options.serial_programs.empty()) return;
  report.mark_checked(kRuleSerialOrder);
  // Chain consecutive compute tasks of each declared program resource in
  // creation order; a cycle through deps ∪ chains means the device's
  // in-order issue engine would deadlock.
  std::vector<std::pair<std::size_t, std::size_t>> extra;
  for (ResourceId resource : options.serial_programs) {
    bool have_prev = false;
    std::size_t prev = 0;
    for (std::size_t i = 0; i < view.tasks->size(); ++i) {
      const Task& task = (*view.tasks)[i];
      if (task.kind != TaskKind::kCompute || task.resource != resource) {
        continue;
      }
      if (have_prev) extra.emplace_back(prev, i);
      prev = i;
      have_prev = true;
    }
  }
  const std::vector<std::size_t> stuck = stuck_tasks(view, extra);
  if (stuck.empty()) return;
  std::ostringstream os;
  os << "declared program order conflicts with the dependency structure: "
     << stuck.size() << " tasks deadlock under in-order issue ("
     << sample_tasks(view, stuck, options.max_diagnostics_per_rule) << ")";
  report.add(kRuleSerialOrder, Severity::kError, "graph", os.str());
}

/// Strips a trailing ".tx"/".rx" so a port pair collapses to its endpoint.
std::string endpoint_of(const std::string& port) {
  if (port.size() > 3) {
    const std::string suffix = port.substr(port.size() - 3);
    if (suffix == ".tx" || suffix == ".rx") {
      return port.substr(0, port.size() - 3);
    }
  }
  return port;
}

void lint_channel_conservation(const TaskSetRef& view,
                               const GraphLintOptions& options,
                               LintReport& report) {
  if (view.channel_count == 0) return;
  report.mark_checked(kRuleChannelConservation);
  struct Flow {
    Bytes tx = 0;
    Bytes rx = 0;
    bool sends = false;
    bool receives = false;
  };
  // channel -> endpoint -> flow
  std::vector<std::map<std::string, Flow>> flows(view.channel_count);
  for (const Task& task : *view.tasks) {
    if (task.kind != TaskKind::kTransfer) continue;
    if (task.channel == sim::kInvalidChannel || task.channel < 0 ||
        static_cast<std::size_t>(task.channel) >= view.channel_count) {
      continue;
    }
    if (!resource_ok(view, task.src_port) || !resource_ok(view, task.dst_port)) {
      continue;  // HV203 reports these
    }
    auto& per_endpoint = flows[static_cast<std::size_t>(task.channel)];
    Flow& src = per_endpoint[endpoint_of(resource_name(view, task.src_port))];
    src.tx += task.bytes;
    src.sends = true;
    Flow& dst = per_endpoint[endpoint_of(resource_name(view, task.dst_port))];
    dst.rx += task.bytes;
    dst.receives = true;
  }
  std::size_t findings = 0;
  for (std::size_t c = 0; c < flows.size(); ++c) {
    const auto& per_endpoint = flows[c];
    if (per_endpoint.size() < 2) continue;
    // Conservation only holds on *closed* channels where every endpoint
    // both sends and receives (ring collectives; also the pipeline channel,
    // whose act/grad byte counts mirror each other).
    const bool closed = std::all_of(
        per_endpoint.begin(), per_endpoint.end(),
        [](const auto& kv) { return kv.second.sends && kv.second.receives; });
    if (!closed) continue;
    for (const auto& [endpoint, flow] : per_endpoint) {
      if (flow.tx == flow.rx) continue;
      if (findings < options.max_diagnostics_per_rule) {
        std::ostringstream os;
        os << "endpoint '" << endpoint << "' transmitted " << flow.tx
           << " bytes but received " << flow.rx
           << " on a closed collective channel — bytes-in != bytes-out";
        report.add(kRuleChannelConservation, Severity::kWarning,
                   "channel " + channel_name(view, static_cast<sim::ChannelId>(c)),
                   os.str());
      }
      ++findings;
    }
  }
}

/// a >= b, up to relative/absolute tolerance.
bool ge(double a, double b, double tolerance) {
  const double eps =
      tolerance * std::max({1.0, std::fabs(a), std::fabs(b)});
  return a >= b - eps;
}

bool near(double a, double b, double tolerance) {
  return ge(a, b, tolerance) && ge(b, a, tolerance);
}

void lint_timing_monotone(const TaskSetRef& view, const sim::SimResult& result,
                          const GraphLintOptions& options, LintReport& report) {
  report.mark_checked(kRuleTimingMonotone);
  std::size_t findings = 0;
  auto emit = [&](std::size_t id, const std::string& message) {
    if (findings < options.max_diagnostics_per_rule) {
      report.add(kRuleTimingMonotone, Severity::kError,
                 task_subject(view, id), message);
    }
    ++findings;
  };
  for (std::size_t i = 0; i < view.tasks->size(); ++i) {
    const Task& task = (*view.tasks)[i];
    const sim::TaskTiming& timing = result.timings()[i];
    if (timing.start < 0) emit(i, "starts at negative simulated time");
    if (timing.finish < timing.start) {
      emit(i, "has a negative span (finish precedes start)");
      continue;
    }
    const double span = timing.finish - timing.start;
    switch (task.kind) {
      case TaskKind::kCompute:
        if (!near(span, task.duration, options.tolerance)) {
          emit(i, "compute span disagrees with its declared duration");
        }
        break;
      case TaskKind::kTransfer:
        if (!near(span, serialization_of(task) + task.latency,
                  options.tolerance)) {
          emit(i, "transfer span disagrees with serialization + latency");
        }
        break;
      case TaskKind::kNoop:
        if (!near(span, 0.0, options.tolerance)) {
          emit(i, "noop consumed simulated time");
        }
        break;
    }
    for (TaskId dep : view.deps(i)) {
      if (dep < 0 || static_cast<std::size_t>(dep) >= view.tasks->size()) {
        continue;  // HV202 reports these
      }
      const sim::TaskTiming& dep_timing =
          result.timings()[static_cast<std::size_t>(dep)];
      if (!ge(timing.start, dep_timing.finish, options.tolerance)) {
        emit(i, "starts before its dependency " +
                    task_subject(view, static_cast<std::size_t>(dep)) +
                    " finished");
      }
    }
  }
}

void lint_resource_exclusive(const TaskSetRef& view,
                             const sim::SimResult& result,
                             const GraphLintOptions& options,
                             LintReport& report) {
  report.mark_checked(kRuleResourceExclusive);
  struct Occupancy {
    SimTime begin;
    SimTime end;
    std::size_t task;
  };
  std::vector<std::vector<Occupancy>> per_resource(view.resource_count);
  auto occupy = [&](ResourceId resource, SimTime begin, SimTime end,
                    std::size_t task) {
    if (!resource_ok(view, resource)) return;  // HV203 reports these
    per_resource[static_cast<std::size_t>(resource)].push_back(
        {begin, end, task});
  };
  for (std::size_t i = 0; i < view.tasks->size(); ++i) {
    const Task& task = (*view.tasks)[i];
    const sim::TaskTiming& timing = result.timings()[i];
    switch (task.kind) {
      case TaskKind::kCompute:
        occupy(task.resource, timing.start, timing.start + task.duration, i);
        break;
      case TaskKind::kTransfer: {
        // Ports are held for the serialization time only; the propagation
        // latency delays dependents, not the ports.
        const SimTime end = timing.start + serialization_of(task);
        occupy(task.src_port, timing.start, end, i);
        if (task.dst_port != task.src_port) {
          occupy(task.dst_port, timing.start, end, i);
        }
        break;
      }
      case TaskKind::kNoop:
        break;
    }
  }
  std::size_t findings = 0;
  for (std::size_t r = 0; r < per_resource.size(); ++r) {
    auto& intervals = per_resource[r];
    std::sort(intervals.begin(), intervals.end(),
              [](const Occupancy& a, const Occupancy& b) {
                if (a.begin != b.begin) return a.begin < b.begin;
                return a.end < b.end;
              });
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      const Occupancy& prev = intervals[i - 1];
      const Occupancy& next = intervals[i];
      if (ge(next.begin, prev.end, options.tolerance)) continue;
      if (findings < options.max_diagnostics_per_rule) {
        std::ostringstream os;
        os << task_subject(view, prev.task) << " and "
           << task_subject(view, next.task)
           << " overlap on the serial resource";
        report.add(kRuleResourceExclusive, Severity::kError,
                   "resource '" + resource_name(view, static_cast<ResourceId>(r)) +
                       "'",
                   os.str());
      }
      ++findings;
    }
  }
}

bool lint_result_complete(const TaskSetRef& view, const sim::SimResult& result,
                          const GraphLintOptions& options,
                          LintReport& report) {
  report.mark_checked(kRuleResultComplete);
  if (result.timings().size() != view.tasks->size()) {
    std::ostringstream os;
    os << "result carries " << result.timings().size() << " timings for "
       << view.tasks->size() << " tasks";
    report.add(kRuleResultComplete, Severity::kError, "result", os.str());
    return false;
  }
  SimTime last = 0;
  for (const sim::TaskTiming& timing : result.timings()) {
    last = std::max(last, timing.finish);
  }
  if (!near(result.makespan(), last, options.tolerance)) {
    std::ostringstream os;
    os << "makespan " << result.makespan()
       << " disagrees with the latest task finish " << last;
    report.add(kRuleResultComplete, Severity::kError, "result", os.str());
  }
  return true;
}

}  // namespace

TaskSetRef as_ref(const sim::TaskGraph& graph) {
  return TaskSetRef{&graph.tasks(), graph.resource_count(),
                    graph.channel_count(), &graph};
}

LintReport lint_graph(const TaskSetRef& view, const GraphLintOptions& options) {
  HOLMES_CHECK_MSG(view.tasks != nullptr, "TaskSetRef needs tasks");
  LintReport report;
  const bool deps_ok = lint_deps_valid(view, options, report);
  lint_task_fields(view, options, report);
  if (deps_ok) {
    lint_acyclic(view, options, report);
    lint_serial_order(view, options, report);
  }
  lint_channel_conservation(view, options, report);
  return report;
}

LintReport lint_graph(const sim::TaskGraph& graph,
                      const GraphLintOptions& options) {
  return lint_graph(as_ref(graph), options);
}

LintReport lint_execution(const TaskSetRef& view, const sim::SimResult& result,
                          const GraphLintOptions& options) {
  HOLMES_CHECK_MSG(view.tasks != nullptr, "TaskSetRef needs tasks");
  LintReport report;
  if (lint_result_complete(view, result, options, report)) {
    lint_timing_monotone(view, result, options, report);
    lint_resource_exclusive(view, result, options, report);
  }
  return report;
}

LintReport lint_execution(const sim::TaskGraph& graph,
                          const sim::SimResult& result,
                          const GraphLintOptions& options) {
  return lint_execution(as_ref(graph), result, options);
}

}  // namespace holmes::verify
