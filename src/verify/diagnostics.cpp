#include "verify/diagnostics.h"

#include <algorithm>
#include <ostream>

#include "util/json.h"

namespace holmes::verify {

std::string to_string(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

void LintReport::add(std::string rule, Severity severity, std::string subject,
                     std::string message) {
  mark_checked(rule);
  diagnostics_.push_back(Diagnostic{std::move(rule), severity,
                                    std::move(subject), std::move(message)});
}

void LintReport::mark_checked(std::string rule) {
  if (std::find(checked_.begin(), checked_.end(), rule) == checked_.end()) {
    checked_.push_back(std::move(rule));
  }
}

void LintReport::merge(const LintReport& other) {
  for (const std::string& rule : other.checked_) mark_checked(rule);
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
}

std::size_t LintReport::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [severity](const Diagnostic& d) {
                      return d.severity == severity;
                    }));
}

bool LintReport::fired(std::string_view rule) const {
  return std::any_of(diagnostics_.begin(), diagnostics_.end(),
                     [rule](const Diagnostic& d) { return d.rule == rule; });
}

void LintReport::promote_warnings() {
  for (Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kWarning) d.severity = Severity::kError;
  }
}

void print_text(std::ostream& out, const LintReport& report) {
  for (const Diagnostic& d : report.diagnostics()) {
    out << "  " << d.rule << " [" << to_string(d.severity) << "] " << d.subject
        << ": " << d.message << "\n";
  }
  out << "checked " << report.rules_checked().size()
      << " rules: " << report.count(Severity::kError) << " errors, "
      << report.count(Severity::kWarning) << " warnings, "
      << report.count(Severity::kNote) << " notes\n"
      << "verdict: " << (report.ok() ? "pass" : "fail") << "\n";
}

namespace {

/// Everything after the schema (and optional fingerprint) member.
void write_json_body(std::ostream& out, const LintReport& report) {
  out << "\"verdict\":\""
      << (report.ok() ? "pass" : "fail")
      << "\",\"errors\":" << report.count(Severity::kError)
      << ",\"warnings\":" << report.count(Severity::kWarning)
      << ",\"notes\":" << report.count(Severity::kNote)
      << ",\"rules_checked\":[";
  for (std::size_t i = 0; i < report.rules_checked().size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << json_escape(report.rules_checked()[i]) << "\"";
  }
  out << "],\"diagnostics\":[";
  for (std::size_t i = 0; i < report.diagnostics().size(); ++i) {
    const Diagnostic& d = report.diagnostics()[i];
    if (i > 0) out << ",";
    out << "{\"rule\":\"" << json_escape(d.rule) << "\",\"severity\":\""
        << to_string(d.severity) << "\",\"subject\":\""
        << json_escape(d.subject) << "\",\"message\":\""
        << json_escape(d.message) << "\"}";
  }
  out << "]}";
}

}  // namespace

void write_json(std::ostream& out, const LintReport& report) {
  out << "{\"schema\":\"" << kLintReportSchema << "\",";
  write_json_body(out, report);
}

void write_json(std::ostream& out, const LintReport& report,
                const BuildInfo& fingerprint) {
  out << "{\"schema\":\"" << kLintReportSchema << "\",\"fingerprint\":";
  write_build_info_json(out, fingerprint);
  out << ",";
  write_json_body(out, report);
}

}  // namespace holmes::verify
