#include "verify/rules.h"

#include <ostream>

namespace holmes::verify {

std::string to_string(RuleFamily family) {
  switch (family) {
    case RuleFamily::kPlan:
      return "plan";
    case RuleFamily::kGraph:
      return "graph";
    case RuleFamily::kExecution:
      return "execution";
    case RuleFamily::kFlow:
      return "flow";
    case RuleFamily::kFault:
      return "fault";
  }
  return "unknown";
}

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> catalog = {
      {kRuleDpGroupTransport, RuleFamily::kPlan, Severity::kError,
       "dp-group-transport",
       "A data-parallel group with RDMA-capable members cannot establish a "
       "common RDMA fabric (mixed NICs or cluster-crossing membership); its "
       "high-volume gradient traffic degrades to Ethernet."},
      {kRuleTpGroupLocality, RuleFamily::kPlan, Severity::kError,
       "tp-group-locality",
       "A tensor-parallel group leaves a single node; TP traffic must stay "
       "on NVLink/PCIe."},
      {kRuleDpClusterCrossing, RuleFamily::kPlan, Severity::kWarning,
       "dp-cluster-crossing",
       "A data-parallel group spans clusters: cluster-crossing traffic is "
       "only tolerable on the low-volume pipeline dimension."},
      {kRulePartitionStructure, RuleFamily::kPlan, Severity::kError,
       "partition-structure",
       "The stage partition is malformed: not a positive multiple of the "
       "pipeline degree, a stage with < 1 layer, or layers not summing to "
       "the model's layer count."},
      {kRulePartitionSpeedOrder, RuleFamily::kPlan, Severity::kWarning,
       "partition-speed-order",
       "Layer counts invert the Eq. (2) NIC speed order: a stage on a "
       "strictly faster NIC received fewer layers than a stage on a "
       "strictly slower one."},
      {kRuleMemoryFit, RuleFamily::kPlan, Severity::kError,
       "memory-fit",
       "The worst stage's estimated per-device memory footprint exceeds the "
       "device memory budget."},
      {kRuleDegreesConsistent, RuleFamily::kPlan, Severity::kError,
       "degrees-consistent",
       "Parallelism degrees are inconsistent with the topology: t*p*d does "
       "not equal the world size, t does not divide a node's GPU count, or "
       "the plan has no micro-batches."},
      {kRuleNeedlessFallback, RuleFamily::kPlan, Severity::kWarning,
       "needless-fallback",
       "The global Ethernet fallback is engaged on a single homogeneous "
       "RDMA cluster, forfeiting RDMA for no compatibility reason."},
      {kRuleGraphAcyclic, RuleFamily::kGraph, Severity::kError,
       "graph-acyclic",
       "The task dependency graph contains a cycle; the affected tasks can "
       "never become ready."},
      {kRuleDepsValid, RuleFamily::kGraph, Severity::kError,
       "deps-valid",
       "A dependency references a task id that does not exist (dangling "
       "edge) or the task itself."},
      {kRuleTaskFields, RuleFamily::kGraph, Severity::kError,
       "task-fields",
       "A task's fields are inconsistent: compute without a valid resource "
       "or with negative duration; transfer with invalid/identical ports, "
       "negative bytes/latency, or missing bandwidth; unknown channel."},
      {kRuleSerialOrder, RuleFamily::kGraph, Severity::kError,
       "serial-order",
       "A device's declared program order (task creation order on a serial "
       "resource) conflicts with the dependency structure — an in-order "
       "issue engine (1F1B) would deadlock."},
      {kRuleChannelConservation, RuleFamily::kGraph, Severity::kWarning,
       "channel-conservation",
       "On a closed collective channel (every endpoint both sends and "
       "receives) an endpoint's bytes-in does not equal its bytes-out."},
      {kRuleTimingMonotone, RuleFamily::kExecution, Severity::kError,
       "timing-monotone",
       "A simulated task has a negative span, starts before a dependency "
       "finished, or its span disagrees with its declared cost."},
      {kRuleResourceExclusive, RuleFamily::kExecution, Severity::kError,
       "resource-exclusive",
       "Two tasks occupy the same serial resource at overlapping times."},
      {kRuleResultComplete, RuleFamily::kExecution, Severity::kError,
       "result-complete",
       "The simulation result does not cover every task, or its makespan "
       "disagrees with the latest task finish."},
      {kRuleFlowChainBound, RuleFamily::kFlow, Severity::kError,
       "flow-chain-bound",
       "The longest dependency chain's aggregate cost — a simulation-free "
       "makespan lower bound — exceeds the simulated makespan, proving the "
       "static analyzer or the executor wrong."},
      {kRuleFlowResourceBound, RuleFamily::kFlow, Severity::kError,
       "flow-resource-bound",
       "A resource's aggregate declared occupancy exceeds the simulated "
       "makespan, or disagrees with the busy time the executor accounted to "
       "it — the serial resource cannot have fit its work."},
      {kRuleFlowMemoryWatermark, RuleFamily::kFlow, Severity::kWarning,
       "flow-memory-watermark",
       "An endpoint's in-flight transfer high-water mark over topological "
       "cuts exceeds the per-device buffer budget; receive buffers would "
       "overflow under any admissible schedule."},
      {kRuleChannelCutBalance, RuleFamily::kFlow, Severity::kWarning,
       "channel-cut-balance",
       "A closed collective channel moves unequal byte volumes across a "
       "cluster cut (a->b vs b->a), so the cross-cluster links cannot be "
       "load-balanced."},
      {kRuleScheduleRace, RuleFamily::kFlow, Severity::kError,
       "schedule-race",
       "Simulated results changed when equal-ready-time ties were reordered "
       "under a seeded permutation: the schedule depends on tie order, which "
       "the determinism contract forbids."},
      {kRuleFabricSaturation, RuleFamily::kFlow, Severity::kWarning,
       "fallback-fabric-saturation",
       "The cross-cluster fallback fabric (Ethernet-class ports) sits at or "
       "above the saturation threshold for more than the configured share "
       "of the observed window: the fallback NIC, not compute, bounds the "
       "iteration (the paper's Fig. 3 diagnosis, machine-checked from the "
       "executed occupancy timeline)."},
      {kRuleFaultWindowSane, RuleFamily::kFault, Severity::kError,
       "fault-window-sane",
       "A NIC degradation window is malformed (negative start, end not after "
       "begin, or a non-positive bandwidth factor), or it opens after the "
       "simulation horizon and can never take effect."},
      {kRuleFaultScopeValid, RuleFamily::kFault, Severity::kError,
       "fault-scope-valid",
       "A fault's scope resolves to no device in the topology: unknown "
       "cluster, node index outside the cluster, straggler rank outside the "
       "world, or a node-loss event naming a non-existent node."},
      {kRuleCheckpointModelSane, RuleFamily::kFault, Severity::kError,
       "checkpoint-model-sane",
       "The checkpoint/restart cost model is unusable: checkpoint period "
       "not positive, negative save/restart cost, or a node-loss event "
       "scheduled without a checkpoint model to recover from."},
      {kRuleRecoveryInvariant, RuleFamily::kFault, Severity::kError,
       "recovery-invariant",
       "The recovered run finished faster than its own fault-free flow "
       "lower bound (HV401's critical chain): elastic re-planning cannot "
       "beat physics, so the recovery accounting is wrong."},
  };
  return catalog;
}

const RuleInfo* find_rule(std::string_view id) {
  for (const RuleInfo& rule : rule_catalog()) {
    if (id == rule.id) return &rule;
  }
  return nullptr;
}

void write_rule_catalog_markdown(std::ostream& out) {
  out << "| Rule | Family | Severity | Name | Checks |\n"
      << "|------|--------|----------|------|--------|\n";
  for (const RuleInfo& rule : rule_catalog()) {
    out << "| " << rule.id << " | " << to_string(rule.family) << " | "
        << to_string(rule.default_severity) << " | `" << rule.title << "` | "
        << rule.detail << " |\n";
  }
}

}  // namespace holmes::verify
