#include "model/memory.h"

#include "util/error.h"

namespace holmes::model {

MemoryEstimate estimate_device_memory(const TransformerConfig& config,
                                      int layers_on_device, int tensor_parallel,
                                      int micro_batch_size,
                                      int in_flight_microbatches,
                                      int optimizer_shards,
                                      const MemoryModelParams& params,
                                      int weight_shards) {
  HOLMES_CHECK_MSG(layers_on_device >= 0, "negative layer count");
  HOLMES_CHECK_MSG(tensor_parallel >= 1, "tensor parallel degree must be >= 1");
  HOLMES_CHECK_MSG(optimizer_shards >= 1, "optimizer shard count must be >= 1");
  HOLMES_CHECK_MSG(weight_shards >= 1, "weight shard count must be >= 1");
  HOLMES_CHECK_MSG(in_flight_microbatches >= 1, "need at least one microbatch");

  const double layer_params =
      config.layer_parameters() / tensor_parallel * layers_on_device;
  // The embedding lives on the first/last stages; we charge it to every
  // device as a conservative upper bound.
  const double params_on_device =
      layer_params + config.embedding_parameters() / tensor_parallel;

  MemoryEstimate est;
  est.weights =
      static_cast<Bytes>(params_on_device * params.weight_bytes / weight_shards);
  est.gradients = static_cast<Bytes>(params_on_device * params.gradient_bytes /
                                     weight_shards);
  est.optimizer_state = static_cast<Bytes>(
      params_on_device * params.optimizer_bytes / optimizer_shards);
  const double act_per_layer_per_sample =
      static_cast<double>(params.activation_factor) * config.seq_len *
      config.hidden / tensor_parallel;
  est.activations = static_cast<Bytes>(
      act_per_layer_per_sample * layers_on_device * micro_batch_size *
      in_flight_microbatches);
  return est;
}

}  // namespace holmes::model
