#pragma once

/// \file memory.h
/// Per-GPU memory footprint estimate for a training configuration.
///
/// Used by planners to reject configurations that could not run on the
/// paper's 80 GB A100s, and by tests to confirm Table 2's groups fit their
/// stated device counts. Mixed-precision Adam accounting (bytes per
/// parameter): 2 (bf16 weights) + 2 (bf16 grads) + 4 + 4 + 4 (fp32 master
/// weights, momentum, variance) = 16, with the optimizer-state share
/// optionally sharded across the data-parallel group (ZeRO-1 /
/// distributed optimizer).

#include "model/transformer.h"

namespace holmes::model {

struct MemoryEstimate {
  Bytes weights = 0;
  Bytes gradients = 0;
  Bytes optimizer_state = 0;
  Bytes activations = 0;
  Bytes total() const { return weights + gradients + optimizer_state + activations; }
};

struct MemoryModelParams {
  int weight_bytes = 2;
  int gradient_bytes = 2;
  int optimizer_bytes = 12;  ///< fp32 master + two Adam moments
  /// Activation bytes per layer per sample ≈ s*h*(34 + 5*a*s/h) in the
  /// selective-recomputation regime; we use the standard 34*s*h lower part.
  int activation_factor = 34;
};

/// Estimates the footprint of one GPU holding `layers_on_device` layers of
/// `config`, with tensor parallel degree t (weights/activations divide by
/// t), `in_flight_microbatches` micro-batches of activations resident
/// (pipeline depth for 1F1B), optimizer state sharded `optimizer_shards`
/// ways (1 = no distributed optimizer), and weights/gradients additionally
/// sharded `weight_shards` ways (> 1 only for ZeRO-3/FSDP).
MemoryEstimate estimate_device_memory(const TransformerConfig& config,
                                      int layers_on_device, int tensor_parallel,
                                      int micro_batch_size,
                                      int in_flight_microbatches,
                                      int optimizer_shards,
                                      const MemoryModelParams& params = {},
                                      int weight_shards = 1);

}  // namespace holmes::model
