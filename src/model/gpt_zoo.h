#pragma once

/// \file gpt_zoo.h
/// The paper's Table 2: eight parameter groups spanning GPT models from
/// 3.6 B to 39.1 B parameters, each with its parallelism degrees and batch
/// sizes. Every experiment (Tables 1, 3, 4, 5 and Figures 3-7) references
/// these groups, so they are encoded once here.
///
/// Notes on the published table: groups 2, 5 and 6 inherit the architecture
/// of the row above them (the PDF leaves those cells blank); group 8's
/// batch size is printed as "1550", which we read as the same 1536 used by
/// group 7 (all other batch sizes in the paper are multiples of 768).

#include <string>
#include <utility>
#include <vector>

#include "model/transformer.h"

namespace holmes::model {

struct ParameterGroup {
  int id = 0;                    ///< 1..8 as in Table 2
  TransformerConfig config;
  double nominal_billions = 0;   ///< the "Number of Parameters" column
  int tensor_parallel = 1;
  int pipeline_parallel = 1;
  int micro_batch_size = 4;
  std::int64_t batch_size = 0;   ///< global batch size B (sequences)

  /// Number of micro-batches each pipeline replica processes per iteration
  /// given a data-parallel degree d: m = B / (d * micro_batch).
  /// Throws holmes::ConfigError when B is not divisible.
  std::int64_t micro_batches(int data_parallel) const;
};

/// All eight groups of Table 2, in order.
const std::vector<ParameterGroup>& table2_groups();

/// Group by its paper id (1-based). Throws holmes::ConfigError for ids
/// outside 1..8.
const ParameterGroup& parameter_group(int id);

/// The standard GPT-3 family (Brown et al. 2020, Table 2.1) with this
/// repository's vocabulary (51,200) and sequence length (2,048) — handy
/// inputs for the auto-tuner beyond the paper's three architectures.
/// Names: "125M", "350M", "760M", "1.3B", "2.7B", "6.7B", "13B", "175B".
/// Throws holmes::ConfigError for unknown names.
TransformerConfig gpt3(const std::string& name);

/// All known gpt3() names, smallest first.
const std::vector<std::string>& gpt3_names();

}  // namespace holmes::model
