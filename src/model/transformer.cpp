#include "model/transformer.h"

#include "util/error.h"

namespace holmes::model {

void TransformerConfig::validate() const {
  if (layers <= 0) throw ConfigError("model needs at least one layer");
  if (hidden <= 0) throw ConfigError("hidden size must be positive");
  if (heads <= 0) throw ConfigError("head count must be positive");
  if (vocab <= 0) throw ConfigError("vocab size must be positive");
  if (seq_len <= 0) throw ConfigError("sequence length must be positive");
  if (hidden % heads != 0) {
    throw ConfigError("hidden size must be divisible by head count");
  }
}

double TransformerConfig::parameter_count() const {
  const double l = layers, h = hidden, V = vocab, s = seq_len;
  return 12.0 * l * h * h *
         (1.0 + 13.0 / (12.0 * h) + (V + s) / (12.0 * l * h));
}

double TransformerConfig::flops_per_iteration(std::int64_t batch_size) const {
  const double B = static_cast<double>(batch_size);
  const double l = layers, h = hidden, V = vocab, s = seq_len;
  return 96.0 * B * s * l * h * h *
         (1.0 + s / (6.0 * h) + V / (16.0 * l * h));
}

double TransformerConfig::layer_flops(std::int64_t samples) const {
  const double b = static_cast<double>(samples);
  const double h = hidden, s = seq_len;
  return 96.0 * b * s * h * h + 16.0 * b * s * s * h;
}

double TransformerConfig::embedding_flops(std::int64_t samples) const {
  const double b = static_cast<double>(samples);
  const double h = hidden, s = seq_len, V = vocab;
  return 6.0 * b * s * h * V;
}

Bytes TransformerConfig::activation_bytes(std::int64_t samples,
                                          int bytes_per_value) const {
  return samples * static_cast<Bytes>(seq_len) * hidden * bytes_per_value;
}

double TransformerConfig::layer_parameters() const {
  const double h = hidden;
  return 12.0 * h * h + 13.0 * h;
}

double TransformerConfig::embedding_parameters() const {
  return (static_cast<double>(vocab) + seq_len) * hidden;
}

}  // namespace holmes::model
