#include "model/gpt_zoo.h"

#include "util/error.h"

namespace holmes::model {

std::int64_t ParameterGroup::micro_batches(int data_parallel) const {
  if (data_parallel <= 0) throw ConfigError("data parallel degree must be positive");
  const std::int64_t per_replica = batch_size / data_parallel;
  if (batch_size % data_parallel != 0) {
    throw ConfigError("batch size " + std::to_string(batch_size) +
                      " not divisible by data parallel degree " +
                      std::to_string(data_parallel));
  }
  if (per_replica % micro_batch_size != 0) {
    throw ConfigError("per-replica batch " + std::to_string(per_replica) +
                      " not divisible by micro batch " +
                      std::to_string(micro_batch_size));
  }
  return per_replica / micro_batch_size;
}

const std::vector<ParameterGroup>& table2_groups() {
  static const std::vector<ParameterGroup> groups = [] {
    // Architectures (Table 2): vocab 51,200 and sequence length 2,048
    // everywhere.
    const TransformerConfig gpt_3_6b{30, 3072, 32, 51200, 2048};
    const TransformerConfig gpt_7_5b{36, 4096, 32, 51200, 2048};
    const TransformerConfig gpt_39b{48, 8192, 64, 51200, 2048};
    std::vector<ParameterGroup> g;
    g.push_back({1, gpt_3_6b, 3.6, 1, 2, 4, 768});
    g.push_back({2, gpt_3_6b, 3.6, 1, 2, 4, 1536});
    g.push_back({3, gpt_7_5b, 7.5, 1, 2, 4, 1536});
    g.push_back({4, gpt_7_5b, 7.5, 1, 2, 4, 2688});
    g.push_back({5, gpt_7_5b, 7.5, 1, 3, 4, 1536});
    g.push_back({6, gpt_7_5b, 7.5, 1, 3, 4, 2688});
    g.push_back({7, gpt_39b, 39.1, 8, 2, 4, 1536});
    g.push_back({8, gpt_39b, 39.1, 8, 3, 4, 1536});
    for (const auto& group : g) group.config.validate();
    return g;
  }();
  return groups;
}

TransformerConfig gpt3(const std::string& name) {
  // layers / hidden / heads per Brown et al. 2020 Table 2.1 (13B uses the
  // round 5120 hidden size).
  static const std::vector<std::pair<std::string, TransformerConfig>> family = {
      {"125M", {12, 768, 12, 51200, 2048}},
      {"350M", {24, 1024, 16, 51200, 2048}},
      {"760M", {24, 1536, 16, 51200, 2048}},
      {"1.3B", {24, 2048, 16, 51200, 2048}},
      {"2.7B", {32, 2560, 32, 51200, 2048}},
      {"6.7B", {32, 4096, 32, 51200, 2048}},
      {"13B", {40, 5120, 40, 51200, 2048}},
      {"175B", {96, 12288, 96, 51200, 2048}},
  };
  for (const auto& [key, config] : family) {
    if (key == name) return config;
  }
  throw ConfigError("unknown GPT-3 family member: '" + name + "'");
}

const std::vector<std::string>& gpt3_names() {
  static const std::vector<std::string> names = {
      "125M", "350M", "760M", "1.3B", "2.7B", "6.7B", "13B", "175B"};
  return names;
}

const ParameterGroup& parameter_group(int id) {
  const auto& groups = table2_groups();
  if (id < 1 || id > static_cast<int>(groups.size())) {
    throw ConfigError("parameter group id must be in 1..8, got " +
                      std::to_string(id));
  }
  return groups[static_cast<std::size_t>(id - 1)];
}

}  // namespace holmes::model
