#pragma once

/// \file transformer.h
/// GPT-style transformer model description and the paper's analytic
/// formulas: parameter count (Eq. 5) and FLOPs per training iteration
/// (Eq. 6). These two formulas define the TFLOPS metric every experiment
/// reports, so they live here as the single source of truth.

#include <cstdint>

#include "util/units.h"

namespace holmes::model {

struct TransformerConfig {
  int layers = 0;        ///< l — number of transformer layers
  int hidden = 0;        ///< h — hidden size
  int heads = 0;         ///< attention heads (sanity only; FLOPs ignore it)
  int vocab = 51200;     ///< V — vocabulary size (paper: 51,200)
  int seq_len = 2048;    ///< s — sequence length (paper: 2,048)

  /// Throws holmes::ConfigError when any dimension is non-positive or the
  /// hidden size is not divisible by the head count.
  void validate() const;

  /// Eq. (5): P = 12 l h^2 (1 + 13/(12h) + (V+s)/(12 l h)).
  double parameter_count() const;

  /// Eq. (6): F = 96 B s l h^2 (1 + s/(6h) + V/(16 l h)) — the GEMM-only
  /// FLOPs of one full iteration (forward + backward) over batch size B.
  double flops_per_iteration(std::int64_t batch_size) const;

  /// FLOPs of one transformer layer for `samples` sequences, forward and
  /// backward combined: 96 b s h^2 + 16 b s^2 h (the per-layer share of
  /// Eq. 6).
  double layer_flops(std::int64_t samples) const;

  /// FLOPs of the embedding/logit GEMMs for `samples` sequences, forward
  /// and backward combined: 6 b s h V (the non-layer share of Eq. 6).
  double embedding_flops(std::int64_t samples) const;

  /// Bytes of one activation tensor crossing a pipeline-stage boundary for
  /// `samples` micro-batch sequences: samples * s * h * bytes_per_value.
  Bytes activation_bytes(std::int64_t samples, int bytes_per_value = 2) const;

  /// Parameters held by one transformer layer: 12 h^2 + 13 h (the per-layer
  /// share of Eq. 5).
  double layer_parameters() const;

  /// Parameters of the embedding table (shared input/output): (V + s) * h.
  double embedding_parameters() const;
};

}  // namespace holmes::model
