# Empty compiler generated dependencies file for holmes_pipeline_tests.
# This may be replaced when dependencies are built.
