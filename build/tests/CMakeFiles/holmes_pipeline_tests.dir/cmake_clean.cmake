file(REMOVE_RECURSE
  "CMakeFiles/holmes_pipeline_tests.dir/pipeline/test_partition.cpp.o"
  "CMakeFiles/holmes_pipeline_tests.dir/pipeline/test_partition.cpp.o.d"
  "CMakeFiles/holmes_pipeline_tests.dir/pipeline/test_schedule.cpp.o"
  "CMakeFiles/holmes_pipeline_tests.dir/pipeline/test_schedule.cpp.o.d"
  "holmes_pipeline_tests"
  "holmes_pipeline_tests.pdb"
  "holmes_pipeline_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holmes_pipeline_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
