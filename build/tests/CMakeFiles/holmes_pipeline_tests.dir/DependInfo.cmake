
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pipeline/test_partition.cpp" "tests/CMakeFiles/holmes_pipeline_tests.dir/pipeline/test_partition.cpp.o" "gcc" "tests/CMakeFiles/holmes_pipeline_tests.dir/pipeline/test_partition.cpp.o.d"
  "/root/repo/tests/pipeline/test_schedule.cpp" "tests/CMakeFiles/holmes_pipeline_tests.dir/pipeline/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/holmes_pipeline_tests.dir/pipeline/test_schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/holmes_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/holmes_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/holmes_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/holmes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
