# Empty dependencies file for holmes_sim_tests.
# This may be replaced when dependencies are built.
