file(REMOVE_RECURSE
  "CMakeFiles/holmes_sim_tests.dir/sim/test_event_queue.cpp.o"
  "CMakeFiles/holmes_sim_tests.dir/sim/test_event_queue.cpp.o.d"
  "CMakeFiles/holmes_sim_tests.dir/sim/test_executor.cpp.o"
  "CMakeFiles/holmes_sim_tests.dir/sim/test_executor.cpp.o.d"
  "CMakeFiles/holmes_sim_tests.dir/sim/test_executor_properties.cpp.o"
  "CMakeFiles/holmes_sim_tests.dir/sim/test_executor_properties.cpp.o.d"
  "CMakeFiles/holmes_sim_tests.dir/sim/test_simulator.cpp.o"
  "CMakeFiles/holmes_sim_tests.dir/sim/test_simulator.cpp.o.d"
  "CMakeFiles/holmes_sim_tests.dir/sim/test_task_graph.cpp.o"
  "CMakeFiles/holmes_sim_tests.dir/sim/test_task_graph.cpp.o.d"
  "CMakeFiles/holmes_sim_tests.dir/sim/test_trace.cpp.o"
  "CMakeFiles/holmes_sim_tests.dir/sim/test_trace.cpp.o.d"
  "holmes_sim_tests"
  "holmes_sim_tests.pdb"
  "holmes_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holmes_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
