
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_event_queue.cpp" "tests/CMakeFiles/holmes_sim_tests.dir/sim/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/holmes_sim_tests.dir/sim/test_event_queue.cpp.o.d"
  "/root/repo/tests/sim/test_executor.cpp" "tests/CMakeFiles/holmes_sim_tests.dir/sim/test_executor.cpp.o" "gcc" "tests/CMakeFiles/holmes_sim_tests.dir/sim/test_executor.cpp.o.d"
  "/root/repo/tests/sim/test_executor_properties.cpp" "tests/CMakeFiles/holmes_sim_tests.dir/sim/test_executor_properties.cpp.o" "gcc" "tests/CMakeFiles/holmes_sim_tests.dir/sim/test_executor_properties.cpp.o.d"
  "/root/repo/tests/sim/test_simulator.cpp" "tests/CMakeFiles/holmes_sim_tests.dir/sim/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/holmes_sim_tests.dir/sim/test_simulator.cpp.o.d"
  "/root/repo/tests/sim/test_task_graph.cpp" "tests/CMakeFiles/holmes_sim_tests.dir/sim/test_task_graph.cpp.o" "gcc" "tests/CMakeFiles/holmes_sim_tests.dir/sim/test_task_graph.cpp.o.d"
  "/root/repo/tests/sim/test_trace.cpp" "tests/CMakeFiles/holmes_sim_tests.dir/sim/test_trace.cpp.o" "gcc" "tests/CMakeFiles/holmes_sim_tests.dir/sim/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/holmes_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/holmes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
