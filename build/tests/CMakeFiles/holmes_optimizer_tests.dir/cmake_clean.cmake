file(REMOVE_RECURSE
  "CMakeFiles/holmes_optimizer_tests.dir/optimizer/test_adam.cpp.o"
  "CMakeFiles/holmes_optimizer_tests.dir/optimizer/test_adam.cpp.o.d"
  "CMakeFiles/holmes_optimizer_tests.dir/optimizer/test_dp_strategy.cpp.o"
  "CMakeFiles/holmes_optimizer_tests.dir/optimizer/test_dp_strategy.cpp.o.d"
  "holmes_optimizer_tests"
  "holmes_optimizer_tests.pdb"
  "holmes_optimizer_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holmes_optimizer_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
