# Empty compiler generated dependencies file for holmes_optimizer_tests.
# This may be replaced when dependencies are built.
