
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_analytic.cpp" "tests/CMakeFiles/holmes_core_tests.dir/core/test_analytic.cpp.o" "gcc" "tests/CMakeFiles/holmes_core_tests.dir/core/test_analytic.cpp.o.d"
  "/root/repo/tests/core/test_autotune.cpp" "tests/CMakeFiles/holmes_core_tests.dir/core/test_autotune.cpp.o" "gcc" "tests/CMakeFiles/holmes_core_tests.dir/core/test_autotune.cpp.o.d"
  "/root/repo/tests/core/test_cost_model.cpp" "tests/CMakeFiles/holmes_core_tests.dir/core/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/holmes_core_tests.dir/core/test_cost_model.cpp.o.d"
  "/root/repo/tests/core/test_experiment.cpp" "tests/CMakeFiles/holmes_core_tests.dir/core/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/holmes_core_tests.dir/core/test_experiment.cpp.o.d"
  "/root/repo/tests/core/test_framework.cpp" "tests/CMakeFiles/holmes_core_tests.dir/core/test_framework.cpp.o" "gcc" "tests/CMakeFiles/holmes_core_tests.dir/core/test_framework.cpp.o.d"
  "/root/repo/tests/core/test_golden.cpp" "tests/CMakeFiles/holmes_core_tests.dir/core/test_golden.cpp.o" "gcc" "tests/CMakeFiles/holmes_core_tests.dir/core/test_golden.cpp.o.d"
  "/root/repo/tests/core/test_perturbation.cpp" "tests/CMakeFiles/holmes_core_tests.dir/core/test_perturbation.cpp.o" "gcc" "tests/CMakeFiles/holmes_core_tests.dir/core/test_perturbation.cpp.o.d"
  "/root/repo/tests/core/test_plan.cpp" "tests/CMakeFiles/holmes_core_tests.dir/core/test_plan.cpp.o" "gcc" "tests/CMakeFiles/holmes_core_tests.dir/core/test_plan.cpp.o.d"
  "/root/repo/tests/core/test_report.cpp" "tests/CMakeFiles/holmes_core_tests.dir/core/test_report.cpp.o" "gcc" "tests/CMakeFiles/holmes_core_tests.dir/core/test_report.cpp.o.d"
  "/root/repo/tests/core/test_table3_trends.cpp" "tests/CMakeFiles/holmes_core_tests.dir/core/test_table3_trends.cpp.o" "gcc" "tests/CMakeFiles/holmes_core_tests.dir/core/test_table3_trends.cpp.o.d"
  "/root/repo/tests/core/test_training_sim.cpp" "tests/CMakeFiles/holmes_core_tests.dir/core/test_training_sim.cpp.o" "gcc" "tests/CMakeFiles/holmes_core_tests.dir/core/test_training_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/holmes_core.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/holmes_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/holmes_model.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/holmes_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/holmes_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/holmes_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/holmes_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/holmes_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/holmes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
