# Empty compiler generated dependencies file for holmes_core_tests.
# This may be replaced when dependencies are built.
