file(REMOVE_RECURSE
  "CMakeFiles/holmes_core_tests.dir/core/test_analytic.cpp.o"
  "CMakeFiles/holmes_core_tests.dir/core/test_analytic.cpp.o.d"
  "CMakeFiles/holmes_core_tests.dir/core/test_autotune.cpp.o"
  "CMakeFiles/holmes_core_tests.dir/core/test_autotune.cpp.o.d"
  "CMakeFiles/holmes_core_tests.dir/core/test_cost_model.cpp.o"
  "CMakeFiles/holmes_core_tests.dir/core/test_cost_model.cpp.o.d"
  "CMakeFiles/holmes_core_tests.dir/core/test_experiment.cpp.o"
  "CMakeFiles/holmes_core_tests.dir/core/test_experiment.cpp.o.d"
  "CMakeFiles/holmes_core_tests.dir/core/test_framework.cpp.o"
  "CMakeFiles/holmes_core_tests.dir/core/test_framework.cpp.o.d"
  "CMakeFiles/holmes_core_tests.dir/core/test_golden.cpp.o"
  "CMakeFiles/holmes_core_tests.dir/core/test_golden.cpp.o.d"
  "CMakeFiles/holmes_core_tests.dir/core/test_perturbation.cpp.o"
  "CMakeFiles/holmes_core_tests.dir/core/test_perturbation.cpp.o.d"
  "CMakeFiles/holmes_core_tests.dir/core/test_plan.cpp.o"
  "CMakeFiles/holmes_core_tests.dir/core/test_plan.cpp.o.d"
  "CMakeFiles/holmes_core_tests.dir/core/test_report.cpp.o"
  "CMakeFiles/holmes_core_tests.dir/core/test_report.cpp.o.d"
  "CMakeFiles/holmes_core_tests.dir/core/test_table3_trends.cpp.o"
  "CMakeFiles/holmes_core_tests.dir/core/test_table3_trends.cpp.o.d"
  "CMakeFiles/holmes_core_tests.dir/core/test_training_sim.cpp.o"
  "CMakeFiles/holmes_core_tests.dir/core/test_training_sim.cpp.o.d"
  "holmes_core_tests"
  "holmes_core_tests.pdb"
  "holmes_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holmes_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
