# Empty dependencies file for holmes_comm_tests.
# This may be replaced when dependencies are built.
