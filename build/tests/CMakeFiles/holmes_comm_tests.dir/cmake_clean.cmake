file(REMOVE_RECURSE
  "CMakeFiles/holmes_comm_tests.dir/comm/test_collective_steps.cpp.o"
  "CMakeFiles/holmes_comm_tests.dir/comm/test_collective_steps.cpp.o.d"
  "CMakeFiles/holmes_comm_tests.dir/comm/test_communicator.cpp.o"
  "CMakeFiles/holmes_comm_tests.dir/comm/test_communicator.cpp.o.d"
  "CMakeFiles/holmes_comm_tests.dir/comm/test_halving_doubling.cpp.o"
  "CMakeFiles/holmes_comm_tests.dir/comm/test_halving_doubling.cpp.o.d"
  "CMakeFiles/holmes_comm_tests.dir/comm/test_hierarchical.cpp.o"
  "CMakeFiles/holmes_comm_tests.dir/comm/test_hierarchical.cpp.o.d"
  "CMakeFiles/holmes_comm_tests.dir/comm/test_inprocess.cpp.o"
  "CMakeFiles/holmes_comm_tests.dir/comm/test_inprocess.cpp.o.d"
  "holmes_comm_tests"
  "holmes_comm_tests.pdb"
  "holmes_comm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holmes_comm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
