
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/comm/test_collective_steps.cpp" "tests/CMakeFiles/holmes_comm_tests.dir/comm/test_collective_steps.cpp.o" "gcc" "tests/CMakeFiles/holmes_comm_tests.dir/comm/test_collective_steps.cpp.o.d"
  "/root/repo/tests/comm/test_communicator.cpp" "tests/CMakeFiles/holmes_comm_tests.dir/comm/test_communicator.cpp.o" "gcc" "tests/CMakeFiles/holmes_comm_tests.dir/comm/test_communicator.cpp.o.d"
  "/root/repo/tests/comm/test_halving_doubling.cpp" "tests/CMakeFiles/holmes_comm_tests.dir/comm/test_halving_doubling.cpp.o" "gcc" "tests/CMakeFiles/holmes_comm_tests.dir/comm/test_halving_doubling.cpp.o.d"
  "/root/repo/tests/comm/test_hierarchical.cpp" "tests/CMakeFiles/holmes_comm_tests.dir/comm/test_hierarchical.cpp.o" "gcc" "tests/CMakeFiles/holmes_comm_tests.dir/comm/test_hierarchical.cpp.o.d"
  "/root/repo/tests/comm/test_inprocess.cpp" "tests/CMakeFiles/holmes_comm_tests.dir/comm/test_inprocess.cpp.o" "gcc" "tests/CMakeFiles/holmes_comm_tests.dir/comm/test_inprocess.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/holmes_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/holmes_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/holmes_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/holmes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
