# Empty dependencies file for holmes_net_tests.
# This may be replaced when dependencies are built.
