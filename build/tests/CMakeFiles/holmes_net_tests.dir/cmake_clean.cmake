file(REMOVE_RECURSE
  "CMakeFiles/holmes_net_tests.dir/net/test_fabric.cpp.o"
  "CMakeFiles/holmes_net_tests.dir/net/test_fabric.cpp.o.d"
  "CMakeFiles/holmes_net_tests.dir/net/test_nic.cpp.o"
  "CMakeFiles/holmes_net_tests.dir/net/test_nic.cpp.o.d"
  "CMakeFiles/holmes_net_tests.dir/net/test_ports.cpp.o"
  "CMakeFiles/holmes_net_tests.dir/net/test_ports.cpp.o.d"
  "CMakeFiles/holmes_net_tests.dir/net/test_topology.cpp.o"
  "CMakeFiles/holmes_net_tests.dir/net/test_topology.cpp.o.d"
  "CMakeFiles/holmes_net_tests.dir/net/test_topology_parse.cpp.o"
  "CMakeFiles/holmes_net_tests.dir/net/test_topology_parse.cpp.o.d"
  "holmes_net_tests"
  "holmes_net_tests.pdb"
  "holmes_net_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holmes_net_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
