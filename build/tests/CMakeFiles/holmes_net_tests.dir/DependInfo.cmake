
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/test_fabric.cpp" "tests/CMakeFiles/holmes_net_tests.dir/net/test_fabric.cpp.o" "gcc" "tests/CMakeFiles/holmes_net_tests.dir/net/test_fabric.cpp.o.d"
  "/root/repo/tests/net/test_nic.cpp" "tests/CMakeFiles/holmes_net_tests.dir/net/test_nic.cpp.o" "gcc" "tests/CMakeFiles/holmes_net_tests.dir/net/test_nic.cpp.o.d"
  "/root/repo/tests/net/test_ports.cpp" "tests/CMakeFiles/holmes_net_tests.dir/net/test_ports.cpp.o" "gcc" "tests/CMakeFiles/holmes_net_tests.dir/net/test_ports.cpp.o.d"
  "/root/repo/tests/net/test_topology.cpp" "tests/CMakeFiles/holmes_net_tests.dir/net/test_topology.cpp.o" "gcc" "tests/CMakeFiles/holmes_net_tests.dir/net/test_topology.cpp.o.d"
  "/root/repo/tests/net/test_topology_parse.cpp" "tests/CMakeFiles/holmes_net_tests.dir/net/test_topology_parse.cpp.o" "gcc" "tests/CMakeFiles/holmes_net_tests.dir/net/test_topology_parse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/holmes_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/holmes_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/holmes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
