# Empty dependencies file for holmes_util_tests.
# This may be replaced when dependencies are built.
