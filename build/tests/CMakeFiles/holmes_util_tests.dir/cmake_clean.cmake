file(REMOVE_RECURSE
  "CMakeFiles/holmes_util_tests.dir/util/test_csv.cpp.o"
  "CMakeFiles/holmes_util_tests.dir/util/test_csv.cpp.o.d"
  "CMakeFiles/holmes_util_tests.dir/util/test_error.cpp.o"
  "CMakeFiles/holmes_util_tests.dir/util/test_error.cpp.o.d"
  "CMakeFiles/holmes_util_tests.dir/util/test_logging.cpp.o"
  "CMakeFiles/holmes_util_tests.dir/util/test_logging.cpp.o.d"
  "CMakeFiles/holmes_util_tests.dir/util/test_math_util.cpp.o"
  "CMakeFiles/holmes_util_tests.dir/util/test_math_util.cpp.o.d"
  "CMakeFiles/holmes_util_tests.dir/util/test_rng.cpp.o"
  "CMakeFiles/holmes_util_tests.dir/util/test_rng.cpp.o.d"
  "CMakeFiles/holmes_util_tests.dir/util/test_table.cpp.o"
  "CMakeFiles/holmes_util_tests.dir/util/test_table.cpp.o.d"
  "CMakeFiles/holmes_util_tests.dir/util/test_thread_pool.cpp.o"
  "CMakeFiles/holmes_util_tests.dir/util/test_thread_pool.cpp.o.d"
  "CMakeFiles/holmes_util_tests.dir/util/test_units.cpp.o"
  "CMakeFiles/holmes_util_tests.dir/util/test_units.cpp.o.d"
  "holmes_util_tests"
  "holmes_util_tests.pdb"
  "holmes_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holmes_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
