# Empty dependencies file for holmes_model_tests.
# This may be replaced when dependencies are built.
