file(REMOVE_RECURSE
  "CMakeFiles/holmes_model_tests.dir/model/test_gpt_zoo.cpp.o"
  "CMakeFiles/holmes_model_tests.dir/model/test_gpt_zoo.cpp.o.d"
  "CMakeFiles/holmes_model_tests.dir/model/test_memory.cpp.o"
  "CMakeFiles/holmes_model_tests.dir/model/test_memory.cpp.o.d"
  "CMakeFiles/holmes_model_tests.dir/model/test_transformer.cpp.o"
  "CMakeFiles/holmes_model_tests.dir/model/test_transformer.cpp.o.d"
  "holmes_model_tests"
  "holmes_model_tests.pdb"
  "holmes_model_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holmes_model_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
