
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/model/test_gpt_zoo.cpp" "tests/CMakeFiles/holmes_model_tests.dir/model/test_gpt_zoo.cpp.o" "gcc" "tests/CMakeFiles/holmes_model_tests.dir/model/test_gpt_zoo.cpp.o.d"
  "/root/repo/tests/model/test_memory.cpp" "tests/CMakeFiles/holmes_model_tests.dir/model/test_memory.cpp.o" "gcc" "tests/CMakeFiles/holmes_model_tests.dir/model/test_memory.cpp.o.d"
  "/root/repo/tests/model/test_transformer.cpp" "tests/CMakeFiles/holmes_model_tests.dir/model/test_transformer.cpp.o" "gcc" "tests/CMakeFiles/holmes_model_tests.dir/model/test_transformer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/holmes_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/holmes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
