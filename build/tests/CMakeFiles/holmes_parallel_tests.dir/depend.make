# Empty dependencies file for holmes_parallel_tests.
# This may be replaced when dependencies are built.
