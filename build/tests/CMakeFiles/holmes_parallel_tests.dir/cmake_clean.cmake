file(REMOVE_RECURSE
  "CMakeFiles/holmes_parallel_tests.dir/parallel/test_group_builder.cpp.o"
  "CMakeFiles/holmes_parallel_tests.dir/parallel/test_group_builder.cpp.o.d"
  "CMakeFiles/holmes_parallel_tests.dir/parallel/test_group_fuzz.cpp.o"
  "CMakeFiles/holmes_parallel_tests.dir/parallel/test_group_fuzz.cpp.o.d"
  "CMakeFiles/holmes_parallel_tests.dir/parallel/test_groups.cpp.o"
  "CMakeFiles/holmes_parallel_tests.dir/parallel/test_groups.cpp.o.d"
  "CMakeFiles/holmes_parallel_tests.dir/parallel/test_parallel_config.cpp.o"
  "CMakeFiles/holmes_parallel_tests.dir/parallel/test_parallel_config.cpp.o.d"
  "holmes_parallel_tests"
  "holmes_parallel_tests.pdb"
  "holmes_parallel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holmes_parallel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
