
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parallel/test_group_builder.cpp" "tests/CMakeFiles/holmes_parallel_tests.dir/parallel/test_group_builder.cpp.o" "gcc" "tests/CMakeFiles/holmes_parallel_tests.dir/parallel/test_group_builder.cpp.o.d"
  "/root/repo/tests/parallel/test_group_fuzz.cpp" "tests/CMakeFiles/holmes_parallel_tests.dir/parallel/test_group_fuzz.cpp.o" "gcc" "tests/CMakeFiles/holmes_parallel_tests.dir/parallel/test_group_fuzz.cpp.o.d"
  "/root/repo/tests/parallel/test_groups.cpp" "tests/CMakeFiles/holmes_parallel_tests.dir/parallel/test_groups.cpp.o" "gcc" "tests/CMakeFiles/holmes_parallel_tests.dir/parallel/test_groups.cpp.o.d"
  "/root/repo/tests/parallel/test_parallel_config.cpp" "tests/CMakeFiles/holmes_parallel_tests.dir/parallel/test_parallel_config.cpp.o" "gcc" "tests/CMakeFiles/holmes_parallel_tests.dir/parallel/test_parallel_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/holmes_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/holmes_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/holmes_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/holmes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
