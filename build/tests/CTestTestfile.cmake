# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/holmes_util_tests[1]_include.cmake")
include("/root/repo/build/tests/holmes_sim_tests[1]_include.cmake")
include("/root/repo/build/tests/holmes_comm_tests[1]_include.cmake")
include("/root/repo/build/tests/holmes_model_tests[1]_include.cmake")
include("/root/repo/build/tests/holmes_parallel_tests[1]_include.cmake")
include("/root/repo/build/tests/holmes_pipeline_tests[1]_include.cmake")
include("/root/repo/build/tests/holmes_optimizer_tests[1]_include.cmake")
include("/root/repo/build/tests/holmes_core_tests[1]_include.cmake")
include("/root/repo/build/tests/holmes_net_tests[1]_include.cmake")
