file(REMOVE_RECURSE
  "CMakeFiles/holmes_cli.dir/holmes_cli.cpp.o"
  "CMakeFiles/holmes_cli.dir/holmes_cli.cpp.o.d"
  "holmes_cli"
  "holmes_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holmes_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
