# Empty dependencies file for holmes_cli.
# This may be replaced when dependencies are built.
