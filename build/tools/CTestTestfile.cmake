# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_envs "/root/repo/build/tools/holmes_cli" "envs")
set_tests_properties(cli_envs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/holmes_cli" "simulate" "hybrid:4" "1")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate_spec "/root/repo/build/tools/holmes_cli" "simulate" "2x8:ib+2x8:roce" "1" "--framework" "megatron-llama")
set_tests_properties(cli_simulate_spec PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_plan "/root/repo/build/tools/holmes_cli" "plan" "hybrid:4" "3")
set_tests_properties(cli_plan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_tune "/root/repo/build/tools/holmes_cli" "tune" "ib:2" "1" "--top" "3" "--max-pipeline" "4")
set_tests_properties(cli_tune PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sweep "/root/repo/build/tools/holmes_cli" "sweep" "hybrid:4" "1" "--csv")
set_tests_properties(cli_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analytic "/root/repo/build/tools/holmes_cli" "analytic" "roce:4" "1")
set_tests_properties(cli_analytic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_straggler "/root/repo/build/tools/holmes_cli" "simulate" "ib:2" "1" "--straggler" "0:1.5")
set_tests_properties(cli_straggler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_env "/root/repo/build/tools/holmes_cli" "simulate" "mars" "1")
set_tests_properties(cli_rejects_bad_env PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
