file(REMOVE_RECURSE
  "CMakeFiles/holmes_model.dir/gpt_zoo.cpp.o"
  "CMakeFiles/holmes_model.dir/gpt_zoo.cpp.o.d"
  "CMakeFiles/holmes_model.dir/memory.cpp.o"
  "CMakeFiles/holmes_model.dir/memory.cpp.o.d"
  "CMakeFiles/holmes_model.dir/transformer.cpp.o"
  "CMakeFiles/holmes_model.dir/transformer.cpp.o.d"
  "libholmes_model.a"
  "libholmes_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holmes_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
