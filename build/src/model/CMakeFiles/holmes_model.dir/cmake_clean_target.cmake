file(REMOVE_RECURSE
  "libholmes_model.a"
)
