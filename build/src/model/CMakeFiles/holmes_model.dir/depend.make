# Empty dependencies file for holmes_model.
# This may be replaced when dependencies are built.
