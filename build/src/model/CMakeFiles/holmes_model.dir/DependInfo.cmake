
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/gpt_zoo.cpp" "src/model/CMakeFiles/holmes_model.dir/gpt_zoo.cpp.o" "gcc" "src/model/CMakeFiles/holmes_model.dir/gpt_zoo.cpp.o.d"
  "/root/repo/src/model/memory.cpp" "src/model/CMakeFiles/holmes_model.dir/memory.cpp.o" "gcc" "src/model/CMakeFiles/holmes_model.dir/memory.cpp.o.d"
  "/root/repo/src/model/transformer.cpp" "src/model/CMakeFiles/holmes_model.dir/transformer.cpp.o" "gcc" "src/model/CMakeFiles/holmes_model.dir/transformer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/holmes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
