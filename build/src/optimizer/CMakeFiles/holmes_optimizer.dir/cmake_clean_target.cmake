file(REMOVE_RECURSE
  "libholmes_optimizer.a"
)
