# Empty dependencies file for holmes_optimizer.
# This may be replaced when dependencies are built.
