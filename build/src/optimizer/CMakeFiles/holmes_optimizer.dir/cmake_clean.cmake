file(REMOVE_RECURSE
  "CMakeFiles/holmes_optimizer.dir/adam.cpp.o"
  "CMakeFiles/holmes_optimizer.dir/adam.cpp.o.d"
  "CMakeFiles/holmes_optimizer.dir/dp_strategy.cpp.o"
  "CMakeFiles/holmes_optimizer.dir/dp_strategy.cpp.o.d"
  "libholmes_optimizer.a"
  "libholmes_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holmes_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
