file(REMOVE_RECURSE
  "CMakeFiles/holmes_net.dir/fabric.cpp.o"
  "CMakeFiles/holmes_net.dir/fabric.cpp.o.d"
  "CMakeFiles/holmes_net.dir/nic.cpp.o"
  "CMakeFiles/holmes_net.dir/nic.cpp.o.d"
  "CMakeFiles/holmes_net.dir/ports.cpp.o"
  "CMakeFiles/holmes_net.dir/ports.cpp.o.d"
  "CMakeFiles/holmes_net.dir/topology.cpp.o"
  "CMakeFiles/holmes_net.dir/topology.cpp.o.d"
  "CMakeFiles/holmes_net.dir/topology_parse.cpp.o"
  "CMakeFiles/holmes_net.dir/topology_parse.cpp.o.d"
  "libholmes_net.a"
  "libholmes_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holmes_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
