file(REMOVE_RECURSE
  "libholmes_net.a"
)
