# Empty compiler generated dependencies file for holmes_net.
# This may be replaced when dependencies are built.
