
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/collective_steps.cpp" "src/comm/CMakeFiles/holmes_comm.dir/collective_steps.cpp.o" "gcc" "src/comm/CMakeFiles/holmes_comm.dir/collective_steps.cpp.o.d"
  "/root/repo/src/comm/communicator.cpp" "src/comm/CMakeFiles/holmes_comm.dir/communicator.cpp.o" "gcc" "src/comm/CMakeFiles/holmes_comm.dir/communicator.cpp.o.d"
  "/root/repo/src/comm/halving_doubling.cpp" "src/comm/CMakeFiles/holmes_comm.dir/halving_doubling.cpp.o" "gcc" "src/comm/CMakeFiles/holmes_comm.dir/halving_doubling.cpp.o.d"
  "/root/repo/src/comm/hierarchical.cpp" "src/comm/CMakeFiles/holmes_comm.dir/hierarchical.cpp.o" "gcc" "src/comm/CMakeFiles/holmes_comm.dir/hierarchical.cpp.o.d"
  "/root/repo/src/comm/inprocess.cpp" "src/comm/CMakeFiles/holmes_comm.dir/inprocess.cpp.o" "gcc" "src/comm/CMakeFiles/holmes_comm.dir/inprocess.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/holmes_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/holmes_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/holmes_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
