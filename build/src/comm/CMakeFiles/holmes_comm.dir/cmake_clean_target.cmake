file(REMOVE_RECURSE
  "libholmes_comm.a"
)
