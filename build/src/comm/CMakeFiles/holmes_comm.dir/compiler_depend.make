# Empty compiler generated dependencies file for holmes_comm.
# This may be replaced when dependencies are built.
