file(REMOVE_RECURSE
  "CMakeFiles/holmes_comm.dir/collective_steps.cpp.o"
  "CMakeFiles/holmes_comm.dir/collective_steps.cpp.o.d"
  "CMakeFiles/holmes_comm.dir/communicator.cpp.o"
  "CMakeFiles/holmes_comm.dir/communicator.cpp.o.d"
  "CMakeFiles/holmes_comm.dir/halving_doubling.cpp.o"
  "CMakeFiles/holmes_comm.dir/halving_doubling.cpp.o.d"
  "CMakeFiles/holmes_comm.dir/hierarchical.cpp.o"
  "CMakeFiles/holmes_comm.dir/hierarchical.cpp.o.d"
  "CMakeFiles/holmes_comm.dir/inprocess.cpp.o"
  "CMakeFiles/holmes_comm.dir/inprocess.cpp.o.d"
  "libholmes_comm.a"
  "libholmes_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holmes_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
