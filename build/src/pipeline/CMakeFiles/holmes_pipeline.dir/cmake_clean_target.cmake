file(REMOVE_RECURSE
  "libholmes_pipeline.a"
)
