
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/partition.cpp" "src/pipeline/CMakeFiles/holmes_pipeline.dir/partition.cpp.o" "gcc" "src/pipeline/CMakeFiles/holmes_pipeline.dir/partition.cpp.o.d"
  "/root/repo/src/pipeline/schedule.cpp" "src/pipeline/CMakeFiles/holmes_pipeline.dir/schedule.cpp.o" "gcc" "src/pipeline/CMakeFiles/holmes_pipeline.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/holmes_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/holmes_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/holmes_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
