file(REMOVE_RECURSE
  "CMakeFiles/holmes_pipeline.dir/partition.cpp.o"
  "CMakeFiles/holmes_pipeline.dir/partition.cpp.o.d"
  "CMakeFiles/holmes_pipeline.dir/schedule.cpp.o"
  "CMakeFiles/holmes_pipeline.dir/schedule.cpp.o.d"
  "libholmes_pipeline.a"
  "libholmes_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holmes_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
