# Empty compiler generated dependencies file for holmes_pipeline.
# This may be replaced when dependencies are built.
