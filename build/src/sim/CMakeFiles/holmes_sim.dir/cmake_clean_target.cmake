file(REMOVE_RECURSE
  "libholmes_sim.a"
)
