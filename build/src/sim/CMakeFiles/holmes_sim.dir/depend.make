# Empty dependencies file for holmes_sim.
# This may be replaced when dependencies are built.
