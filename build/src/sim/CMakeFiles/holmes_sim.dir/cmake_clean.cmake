file(REMOVE_RECURSE
  "CMakeFiles/holmes_sim.dir/event_queue.cpp.o"
  "CMakeFiles/holmes_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/holmes_sim.dir/executor.cpp.o"
  "CMakeFiles/holmes_sim.dir/executor.cpp.o.d"
  "CMakeFiles/holmes_sim.dir/simulator.cpp.o"
  "CMakeFiles/holmes_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/holmes_sim.dir/task_graph.cpp.o"
  "CMakeFiles/holmes_sim.dir/task_graph.cpp.o.d"
  "CMakeFiles/holmes_sim.dir/trace.cpp.o"
  "CMakeFiles/holmes_sim.dir/trace.cpp.o.d"
  "libholmes_sim.a"
  "libholmes_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holmes_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
