file(REMOVE_RECURSE
  "CMakeFiles/holmes_util.dir/csv.cpp.o"
  "CMakeFiles/holmes_util.dir/csv.cpp.o.d"
  "CMakeFiles/holmes_util.dir/error.cpp.o"
  "CMakeFiles/holmes_util.dir/error.cpp.o.d"
  "CMakeFiles/holmes_util.dir/logging.cpp.o"
  "CMakeFiles/holmes_util.dir/logging.cpp.o.d"
  "CMakeFiles/holmes_util.dir/rng.cpp.o"
  "CMakeFiles/holmes_util.dir/rng.cpp.o.d"
  "CMakeFiles/holmes_util.dir/table.cpp.o"
  "CMakeFiles/holmes_util.dir/table.cpp.o.d"
  "CMakeFiles/holmes_util.dir/thread_pool.cpp.o"
  "CMakeFiles/holmes_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/holmes_util.dir/units.cpp.o"
  "CMakeFiles/holmes_util.dir/units.cpp.o.d"
  "libholmes_util.a"
  "libholmes_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holmes_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
