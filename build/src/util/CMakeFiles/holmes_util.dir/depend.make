# Empty dependencies file for holmes_util.
# This may be replaced when dependencies are built.
