file(REMOVE_RECURSE
  "libholmes_util.a"
)
