file(REMOVE_RECURSE
  "libholmes_parallel.a"
)
