# Empty dependencies file for holmes_parallel.
# This may be replaced when dependencies are built.
