file(REMOVE_RECURSE
  "CMakeFiles/holmes_parallel.dir/group_builder.cpp.o"
  "CMakeFiles/holmes_parallel.dir/group_builder.cpp.o.d"
  "CMakeFiles/holmes_parallel.dir/groups.cpp.o"
  "CMakeFiles/holmes_parallel.dir/groups.cpp.o.d"
  "CMakeFiles/holmes_parallel.dir/parallel_config.cpp.o"
  "CMakeFiles/holmes_parallel.dir/parallel_config.cpp.o.d"
  "libholmes_parallel.a"
  "libholmes_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holmes_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
