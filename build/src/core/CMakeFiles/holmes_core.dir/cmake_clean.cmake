file(REMOVE_RECURSE
  "CMakeFiles/holmes_core.dir/analytic.cpp.o"
  "CMakeFiles/holmes_core.dir/analytic.cpp.o.d"
  "CMakeFiles/holmes_core.dir/autotune.cpp.o"
  "CMakeFiles/holmes_core.dir/autotune.cpp.o.d"
  "CMakeFiles/holmes_core.dir/cost_model.cpp.o"
  "CMakeFiles/holmes_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/holmes_core.dir/experiment.cpp.o"
  "CMakeFiles/holmes_core.dir/experiment.cpp.o.d"
  "CMakeFiles/holmes_core.dir/framework.cpp.o"
  "CMakeFiles/holmes_core.dir/framework.cpp.o.d"
  "CMakeFiles/holmes_core.dir/plan.cpp.o"
  "CMakeFiles/holmes_core.dir/plan.cpp.o.d"
  "CMakeFiles/holmes_core.dir/report.cpp.o"
  "CMakeFiles/holmes_core.dir/report.cpp.o.d"
  "CMakeFiles/holmes_core.dir/training_sim.cpp.o"
  "CMakeFiles/holmes_core.dir/training_sim.cpp.o.d"
  "libholmes_core.a"
  "libholmes_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holmes_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
