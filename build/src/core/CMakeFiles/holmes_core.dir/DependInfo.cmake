
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analytic.cpp" "src/core/CMakeFiles/holmes_core.dir/analytic.cpp.o" "gcc" "src/core/CMakeFiles/holmes_core.dir/analytic.cpp.o.d"
  "/root/repo/src/core/autotune.cpp" "src/core/CMakeFiles/holmes_core.dir/autotune.cpp.o" "gcc" "src/core/CMakeFiles/holmes_core.dir/autotune.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/holmes_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/holmes_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/holmes_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/holmes_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/framework.cpp" "src/core/CMakeFiles/holmes_core.dir/framework.cpp.o" "gcc" "src/core/CMakeFiles/holmes_core.dir/framework.cpp.o.d"
  "/root/repo/src/core/plan.cpp" "src/core/CMakeFiles/holmes_core.dir/plan.cpp.o" "gcc" "src/core/CMakeFiles/holmes_core.dir/plan.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/holmes_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/holmes_core.dir/report.cpp.o.d"
  "/root/repo/src/core/training_sim.cpp" "src/core/CMakeFiles/holmes_core.dir/training_sim.cpp.o" "gcc" "src/core/CMakeFiles/holmes_core.dir/training_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/holmes_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/holmes_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/holmes_net.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/holmes_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/holmes_model.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/holmes_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/holmes_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/holmes_optimizer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
