file(REMOVE_RECURSE
  "libholmes_core.a"
)
