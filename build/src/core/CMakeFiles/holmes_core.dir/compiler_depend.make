# Empty compiler generated dependencies file for holmes_core.
# This may be replaced when dependencies are built.
