file(REMOVE_RECURSE
  "CMakeFiles/cross_cluster_training.dir/cross_cluster_training.cpp.o"
  "CMakeFiles/cross_cluster_training.dir/cross_cluster_training.cpp.o.d"
  "cross_cluster_training"
  "cross_cluster_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_cluster_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
