# Empty dependencies file for cross_cluster_training.
# This may be replaced when dependencies are built.
