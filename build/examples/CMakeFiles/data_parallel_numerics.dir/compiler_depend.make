# Empty compiler generated dependencies file for data_parallel_numerics.
# This may be replaced when dependencies are built.
