file(REMOVE_RECURSE
  "CMakeFiles/data_parallel_numerics.dir/data_parallel_numerics.cpp.o"
  "CMakeFiles/data_parallel_numerics.dir/data_parallel_numerics.cpp.o.d"
  "data_parallel_numerics"
  "data_parallel_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_parallel_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
