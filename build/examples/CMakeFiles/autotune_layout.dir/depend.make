# Empty dependencies file for autotune_layout.
# This may be replaced when dependencies are built.
