file(REMOVE_RECURSE
  "CMakeFiles/autotune_layout.dir/autotune_layout.cpp.o"
  "CMakeFiles/autotune_layout.dir/autotune_layout.cpp.o.d"
  "autotune_layout"
  "autotune_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
