# Empty compiler generated dependencies file for nic_selection_explorer.
# This may be replaced when dependencies are built.
