file(REMOVE_RECURSE
  "CMakeFiles/nic_selection_explorer.dir/nic_selection_explorer.cpp.o"
  "CMakeFiles/nic_selection_explorer.dir/nic_selection_explorer.cpp.o.d"
  "nic_selection_explorer"
  "nic_selection_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_selection_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
