
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_params.cpp" "bench/CMakeFiles/bench_table2_params.dir/bench_table2_params.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_params.dir/bench_table2_params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/holmes_core.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/holmes_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/holmes_model.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/holmes_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/holmes_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/holmes_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/holmes_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/holmes_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/holmes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
