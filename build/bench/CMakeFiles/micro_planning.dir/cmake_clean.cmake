file(REMOVE_RECURSE
  "CMakeFiles/micro_planning.dir/micro_planning.cpp.o"
  "CMakeFiles/micro_planning.dir/micro_planning.cpp.o.d"
  "micro_planning"
  "micro_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
