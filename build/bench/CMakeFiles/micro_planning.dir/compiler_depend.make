# Empty compiler generated dependencies file for micro_planning.
# This may be replaced when dependencies are built.
