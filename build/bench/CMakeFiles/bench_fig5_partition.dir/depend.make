# Empty dependencies file for bench_fig5_partition.
# This may be replaced when dependencies are built.
