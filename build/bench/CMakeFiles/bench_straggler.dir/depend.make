# Empty dependencies file for bench_straggler.
# This may be replaced when dependencies are built.
