file(REMOVE_RECURSE
  "CMakeFiles/bench_hierarchical.dir/bench_hierarchical.cpp.o"
  "CMakeFiles/bench_hierarchical.dir/bench_hierarchical.cpp.o.d"
  "bench_hierarchical"
  "bench_hierarchical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hierarchical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
