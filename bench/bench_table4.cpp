/// Regenerates paper Table 4: three-cluster heterogeneous environments with
/// pipeline degree 3. The paper evaluates the 7.5 B model at batch 1536 and
/// 2688 (its row labels "3"/"6" correspond to our p=3 parameter groups 5
/// and 6) on:
///   6 nodes:  2 RoCE + 2 RoCE + 2 IB   and   2 RoCE + 2 IB + 2 IB
///   12 nodes: 4 RoCE + 4 IB + 4 IB
/// comparing the pure-Ethernet environment against Holmes on the hybrid
/// clusters.

#include <iostream>
#include <vector>

#include "bench_json.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace holmes;
using namespace holmes::core;

namespace {

net::Topology three_clusters(int nodes_each, net::NicType a, net::NicType b,
                             net::NicType c) {
  return net::Topology({
      net::ClusterSpec{"cluster-a", nodes_each, 8, a},
      net::ClusterSpec{"cluster-b", nodes_each, 8, b},
      net::ClusterSpec{"cluster-c", nodes_each, 8, c},
  });
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("table4", argc, argv);
  report.run_timed([&] {
    std::cout << "Table 4: three-cluster environments, pipeline degree 3 "
                 "(TFLOPS / throughput)\n"
              << "Rows use the 7.5B model at p=3: batch 1536 (group 5) and "
                 "2688 (group 6)\n\n";

    using net::NicType;
    struct Scenario {
      std::string label;
      net::Topology hybrid;
      int total_nodes;
    };
    std::vector<Scenario> scenarios;
    scenarios.push_back({"6N 2RoCE&2RoCE&2IB",
                         three_clusters(2, NicType::kRoCE, NicType::kRoCE,
                                        NicType::kInfiniBand),
                         6});
    scenarios.push_back({"6N 2RoCE&2IB&2IB",
                         three_clusters(2, NicType::kRoCE, NicType::kInfiniBand,
                                        NicType::kInfiniBand),
                         6});
    scenarios.push_back({"12N 4RoCE&4IB&4IB",
                         three_clusters(4, NicType::kRoCE, NicType::kInfiniBand,
                                        NicType::kInfiniBand),
                         12});

    const std::vector<int> groups = {5, 6};
    const FrameworkConfig holmes = FrameworkConfig::holmes();
    const FrameworkConfig ethernet_baseline =
        FrameworkConfig::holmes().without_self_adapting();

    struct Cell {
      double eth_tflops, eth_thr, hyb_tflops, hyb_thr;
    };
    std::vector<Cell> cells(groups.size() * scenarios.size());
    ThreadPool pool;
    pool.parallel_for(cells.size(), [&](std::size_t i) {
      const std::size_t gi = i / scenarios.size();
      const std::size_t si = i % scenarios.size();
      const IterationMetrics eth =
          run_experiment(ethernet_baseline, NicEnv::kEthernet,
                         scenarios[si].total_nodes, groups[gi]);
      const IterationMetrics hyb =
          run_experiment(holmes, scenarios[si].hybrid, groups[gi]);
      cells[i] = {eth.tflops_per_gpu, eth.throughput, hyb.tflops_per_gpu,
                  hyb.throughput};
    });

    TextTable table({"Group", "Scenario", "Ethernet TFLOPS/Thr",
                     "Hybrid TFLOPS/Thr"});
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      for (std::size_t si = 0; si < scenarios.size(); ++si) {
        const Cell& c = cells[gi * scenarios.size() + si];
        table.add_row({TextTable::num(static_cast<std::int64_t>(groups[gi])),
                       scenarios[si].label,
                       TextTable::num(c.eth_tflops, 0) + " / " +
                           TextTable::num(c.eth_thr, 2),
                       TextTable::num(c.hyb_tflops, 0) + " / " +
                           TextTable::num(c.hyb_thr, 2)});
        const std::string prefix = "group" + std::to_string(groups[gi]) + "/" +
                                   scenarios[si].label;
        report.set(prefix + "/ethernet_tflops", c.eth_tflops);
        report.set(prefix + "/ethernet_throughput", c.eth_thr);
        report.set(prefix + "/hybrid_tflops", c.hyb_tflops);
        report.set(prefix + "/hybrid_throughput", c.hyb_thr);
      }
    }
    table.print();
  });
  return report.write();
}
