#pragma once

/// \file micro_bench_json.h
/// holmes.bench.v1 bridge for the google-benchmark micro benches.
///
/// The micro_* binaries replace BENCHMARK_MAIN() with
///
///   int main(int argc, char** argv) {
///     return holmes::bench::micro_bench_main("micro_foo", argc, argv);
///   }
///
/// Without `--json` this is exactly BENCHMARK_MAIN(): the console reporter,
/// all google-benchmark flags intact. With `--json[=FILE]` (plus the
/// BenchReport `--repeat N` / `--warmup M` flags) the whole registered
/// suite runs once per pass behind a silent reporter, warmup passes are
/// discarded, and each benchmark's per-iteration wall seconds across the
/// timed passes land in the report as
///
///   time_s/<benchmark name>/min
///   time_s/<benchmark name>/median
///
/// alongside the suite-level wall_s block — one holmes.bench.v1 document
/// per binary, the same shape the experiment benches emit, so
/// `holmes_cli bench` can fold both kinds into a trajectory.

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "bench_json.h"
#include "util/sample_stats.h"

namespace holmes::bench {

namespace detail {

/// Collects per-iteration real seconds per benchmark, printing nothing.
class CaptureReporter : public benchmark::BenchmarkReporter {
 public:
  explicit CaptureReporter(std::map<std::string, std::vector<double>>& sink)
      : sink_(sink) {}

  bool ReportContext(const Context&) override { return true; }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      sink_[run.benchmark_name()].push_back(run.real_accumulated_time / iters);
    }
  }

 private:
  std::map<std::string, std::vector<double>>& sink_;
};

/// True for the BenchReport-owned flags that google-benchmark would reject.
inline bool is_report_flag(const std::string& arg, bool& eats_value) {
  eats_value = arg == "--repeat" || arg == "--warmup";
  return eats_value || arg == "--json" || arg.rfind("--json=", 0) == 0 ||
         arg.rfind("--repeat=", 0) == 0 || arg.rfind("--warmup=", 0) == 0;
}

}  // namespace detail

inline int micro_bench_main(const std::string& name, int argc, char** argv) {
  BenchReport report(name, argc, argv);

  // google-benchmark aborts on flags it does not know; strip ours first.
  std::vector<char*> bm_argv;
  bm_argv.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    bool eats_value = false;
    if (detail::is_report_flag(argv[i], eats_value)) {
      if (eats_value && i + 1 < argc) ++i;
      continue;
    }
    bm_argv.push_back(argv[i]);
  }
  int bm_argc = static_cast<int>(bm_argv.size());
  bm_argv.push_back(nullptr);
  benchmark::Initialize(&bm_argc, bm_argv.data());

  if (!report.enabled()) {
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }

  // Every pass runs the full registered suite in registration order, so
  // each benchmark collects exactly warmup+repeat samples; drop the first
  // `warmup` of each below.
  std::map<std::string, std::vector<double>> samples;
  detail::CaptureReporter reporter(samples);
  report.run_timed([&] { benchmark::RunSpecifiedBenchmarks(&reporter); });

  for (const auto& [bench_name, all] : samples) {
    std::vector<double> timed(
        all.begin() + std::min<std::size_t>(
                          static_cast<std::size_t>(report.warmup()), all.size()),
        all.end());
    const SampleStats stats = summarize_samples(std::move(timed));
    report.set("time_s/" + bench_name + "/min", stats.min);
    report.set("time_s/" + bench_name + "/median", stats.median);
  }
  const int rc = report.write();
  benchmark::Shutdown();
  return rc;
}

}  // namespace holmes::bench
