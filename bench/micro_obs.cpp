/// Micro-benchmarks of the telemetry subsystem: registry hot-path updates,
/// the executor-attached recorder's overhead versus an unobserved run, and
/// post-hoc accounting over a finished simulation. The recorder benches are
/// the interesting ones — they bound how much instrumenting a sweep costs.

#include <benchmark/benchmark.h>

#include "micro_bench_json.h"

#include "core/run_stats.h"
#include "core/training_sim.h"
#include "model/gpt_zoo.h"
#include "net/topology.h"
#include "obs/accounting.h"
#include "obs/recorder.h"
#include "sim/executor.h"

using namespace holmes;
using namespace holmes::sim;

namespace {

/// A pipeline-ish graph: `width` serial resources, each running `depth`
/// compute tasks, with transfers handing off between neighbours. Dense
/// enough that recorder overhead per task dominates graph construction.
TaskGraph make_grid_graph(int width, int depth) {
  TaskGraph g;
  std::vector<ResourceId> gpus;
  std::vector<ResourceId> tx;
  std::vector<ResourceId> rx;
  for (int i = 0; i < width; ++i) {
    gpus.push_back(g.add_resource("gpu" + std::to_string(i)));
    tx.push_back(g.add_resource("gpu" + std::to_string(i) + ".tx"));
    rx.push_back(g.add_resource("gpu" + std::to_string(i) + ".rx"));
  }
  const ChannelId pp = g.channel("pp");
  std::vector<TaskId> prev(static_cast<std::size_t>(width), kInvalidTask);
  for (int d = 0; d < depth; ++d) {
    for (int i = 0; i < width; ++i) {
      const TaskId c = g.add_compute(gpus[i], 1e-5, "fwd", 1);
      if (prev[i] != kInvalidTask) g.add_dep(c, prev[i]);
      prev[i] = c;
      if (i + 1 < width) {
        const TaskId t = g.add_transfer(tx[i], rx[i + 1], 1 << 16, 25e9,
                                        5e-6, "p2p", 3, pp);
        g.add_dep(t, c);
        prev[i + 1] = t;
      }
    }
  }
  return g;
}

}  // namespace

static void BM_RegistryCounterHotPath(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter& hot = registry.counter("device.busy_seconds",
                                       obs::Labels{{"device", "gpu0"}});
  for (auto _ : state) {
    hot.add(1e-5);
    benchmark::DoNotOptimize(hot.value());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryCounterHotPath);

static void BM_RegistryLabelLookup(benchmark::State& state) {
  // The cold path the recorder avoids: name+labels -> instrument each call.
  obs::MetricsRegistry registry;
  for (auto _ : state) {
    registry.counter("device.busy_seconds", obs::Labels{{"device", "gpu0"}})
        .add(1e-5);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryLabelLookup);

static void BM_ExecutorUnobserved(benchmark::State& state) {
  const TaskGraph g = make_grid_graph(8, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TaskGraphExecutor{}.run(g).makespan());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.task_count()));
}
BENCHMARK(BM_ExecutorUnobserved)->Arg(1 << 6)->Arg(1 << 9);

static void BM_ExecutorWithRecorder(benchmark::State& state) {
  // Same workload as BM_ExecutorUnobserved; the delta is recorder cost.
  const TaskGraph g = make_grid_graph(8, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    obs::MetricsRegistry registry;
    obs::RegistryRecorder recorder(registry);
    benchmark::DoNotOptimize(TaskGraphExecutor{}.run(g, &recorder).makespan());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.task_count()));
}
BENCHMARK(BM_ExecutorWithRecorder)->Arg(1 << 6)->Arg(1 << 9);

static void BM_AccountResources(benchmark::State& state) {
  const TaskGraph g = make_grid_graph(8, static_cast<int>(state.range(0)));
  const SimResult result = TaskGraphExecutor{}.run(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::account_resources(g, result));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.task_count()));
}
BENCHMARK(BM_AccountResources)->Arg(1 << 9);

static void BM_AccountOverlap(benchmark::State& state) {
  const TaskGraph g = make_grid_graph(8, static_cast<int>(state.range(0)));
  const SimResult result = TaskGraphExecutor{}.run(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        obs::account_overlap(g, result, obs::tag_in({3}), obs::tag_in({1})));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.task_count()));
}
BENCHMARK(BM_AccountOverlap)->Arg(1 << 9);

static void BM_BuildRunSummary(benchmark::State& state) {
  // End-to-end cost of the stats surface on a real training run.
  using namespace holmes::core;
  const net::Topology topo = net::Topology::hybrid_two_clusters(2);
  const TrainingPlan plan = Planner(FrameworkConfig::holmes())
                                .plan(topo, model::parameter_group(1));
  SimArtifacts artifacts;
  const IterationMetrics metrics =
      TrainingSimulator{}.run(topo, plan, 3, {}, nullptr, &artifacts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_run_summary(topo, plan, metrics, artifacts));
  }
}
BENCHMARK(BM_BuildRunSummary);

int main(int argc, char** argv) {
  return holmes::bench::micro_bench_main("micro_obs", argc, argv);
}
