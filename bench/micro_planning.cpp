/// Micro-benchmarks of the planning layer: group construction, partition
/// strategies, and a full end-to-end plan + simulate of one training
/// scenario (the unit of work every experiment bench repeats).

#include <benchmark/benchmark.h>

#include "micro_bench_json.h"

#include "core/experiment.h"
#include "parallel/group_builder.h"
#include "pipeline/partition.h"

using namespace holmes;

static void BM_HolmesGroupBuild(benchmark::State& state) {
  const int nodes_per_cluster = static_cast<int>(state.range(0));
  const net::Topology topo =
      net::Topology::hybrid_two_clusters(nodes_per_cluster);
  const parallel::ParallelConfig config =
      parallel::derive_config(topo, 1, 2);
  const parallel::HolmesGroupBuilder builder;
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(topo, config));
  }
}
BENCHMARK(BM_HolmesGroupBuild)->Arg(2)->Arg(8)->Arg(32);

static void BM_SelfAdaptingPartition(benchmark::State& state) {
  const int stages = static_cast<int>(state.range(0));
  std::vector<net::NicType> nics;
  for (int s = 0; s < stages; ++s) {
    nics.push_back(s % 2 == 0 ? net::NicType::kInfiniBand
                              : net::NicType::kRoCE);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pipeline::self_adapting_partition(96, nics, 1.05));
  }
}
BENCHMARK(BM_SelfAdaptingPartition)->Arg(2)->Arg(4)->Arg(8);

static void BM_FullScenarioSimulation(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_experiment(
        core::FrameworkConfig::holmes(), core::NicEnv::kHybrid, nodes, 1));
  }
}
BENCHMARK(BM_FullScenarioSimulation)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  return holmes::bench::micro_bench_main("micro_planning", argc, argv);
}
