#pragma once

/// \file bench_json.h
/// Shared machine-readable output for the experiment benches.
///
/// Every bench_* binary prints a human table; CI and regression tooling
/// want the same numbers as stable JSON. Each bench constructs a
/// BenchReport, records every table cell under a stable metric name
/// ("grad_sync_s/group1/ib"), and ends main with `return report.write();`.
/// Without `--json` the report is a no-op; with it the bench additionally
/// emits one holmes.bench.v1 document:
///
///   --json         write BENCH_<name>.json in the working directory
///   --json=FILE    write FILE ("-" for stdout)
///
/// The schema is a flat metric list so `holmes_cli diff` aligns two bench
/// runs by metric name regardless of ordering:
///
///   {"schema":"holmes.bench.v1","bench":"<name>",
///    "metrics":[{"name":"...","value":...},...]}

#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "util/error.h"
#include "util/json.h"

namespace holmes::bench {

class BenchReport {
 public:
  /// `name` is the bench's stable identifier (binary name without the
  /// bench_ prefix). Scans argv for --json[=FILE]; unrelated arguments are
  /// ignored so benches stay no-argument tools.
  BenchReport(std::string name, int argc, char** argv)
      : name_(std::move(name)) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json") {
        file_ = "BENCH_" + name_ + ".json";
      } else if (arg.rfind("--json=", 0) == 0) {
        file_ = arg.substr(7);
        if (file_.empty()) file_ = "BENCH_" + name_ + ".json";
      }
    }
  }

  bool enabled() const { return !file_.empty(); }

  /// Records one scalar under a stable name (insertion order preserved).
  void set(const std::string& metric, double value) {
    if (enabled()) metrics_.emplace_back(metric, value);
  }

  /// Writes the report when --json was given. Returns 0 so benches can
  /// `return report.write();` from main.
  int write() const {
    if (!enabled()) return 0;
    if (file_ == "-") {
      emit(std::cout);
      std::cout << "\n";
      return 0;
    }
    std::ofstream out(file_);
    if (!out) throw ConfigError("cannot open " + file_);
    emit(out);
    out << "\n";
    std::cout << "\nJSON written to " << file_ << "\n";
    return 0;
  }

 private:
  void emit(std::ostream& out) const {
    out << "{\"schema\":\"holmes.bench.v1\",\"bench\":\"" << json_escape(name_)
        << "\",\"metrics\":[";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"name\":\"" << json_escape(metrics_[i].first)
          << "\",\"value\":" << json_number(metrics_[i].second) << "}";
    }
    out << "]}";
  }

  std::string name_;
  std::string file_;  ///< empty: disabled
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace holmes::bench
