#pragma once

/// \file bench_json.h
/// Shared machine-readable output for the experiment benches.
///
/// Every bench_* binary prints a human table; CI and regression tooling
/// want the same numbers as stable JSON. Each bench constructs a
/// BenchReport, wraps its body in `report.run_timed([&] {...});`, records
/// every table cell under a stable metric name ("grad_sync_s/group1/ib"),
/// and ends main with `return report.write();`. Without `--json` the report
/// is a no-op (the body runs exactly once, untimed); with it the bench
/// additionally emits one holmes.bench.v1 document:
///
///   --json         write BENCH_<name>.json in the working directory
///   --json=FILE    write FILE ("-" for stdout)
///   --repeat N     timed passes of the body (default 1)
///   --warmup N     discarded passes before the timed ones (default 0)
///
/// Repetition exists because a single wall-clock sample is noise: the
/// report keeps min/median/max/spread over the `--repeat N` samples
/// (metrics come from the last pass, which re-records them each time).
/// `holmes_cli bench` drives these flags and folds the per-bench documents
/// into a holmes.bench_suite.v1 trajectory.
///
/// The schema is a flat metric list so `holmes_cli diff` aligns two bench
/// runs by metric name regardless of ordering:
///
///   {"schema":"holmes.bench.v1","bench":"<name>","repeat":N,"warmup":M,
///    "wall_s":{"min":...,"median":...,"max":...,"spread":...},
///    "metrics":[{"name":"...","value":...},...]}
///
/// For CI gate rehearsals, HOLMES_BENCH_DELIBERATE_DELAY_MS=<ms> in the
/// environment sleeps inside every timed pass — a real, measured slowdown
/// that a perf gate must catch.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/error.h"
#include "util/json.h"
#include "util/sample_stats.h"

namespace holmes::bench {

class BenchReport {
 public:
  /// `name` is the bench's stable identifier (binary name without the
  /// bench_ prefix). Scans argv for --json[=FILE], --repeat N and
  /// --warmup N; unrelated arguments are ignored so benches stay
  /// no-argument tools.
  BenchReport(std::string name, int argc, char** argv)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
    auto int_option = [&](int& i, const std::string& arg, const char* flag,
                          int& out) {
      const std::string prefix = std::string(flag) + "=";
      if (arg == flag && i + 1 < argc) {
        out = std::atoi(argv[++i]);
        return true;
      }
      if (arg.rfind(prefix, 0) == 0) {
        out = std::atoi(arg.c_str() + prefix.size());
        return true;
      }
      return false;
    };
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json") {
        file_ = "BENCH_" + name_ + ".json";
      } else if (arg.rfind("--json=", 0) == 0) {
        file_ = arg.substr(7);
        if (file_.empty()) file_ = "BENCH_" + name_ + ".json";
      } else if (int_option(i, arg, "--repeat", repeat_) ||
                 int_option(i, arg, "--warmup", warmup_)) {
        // parsed into repeat_/warmup_
      }
    }
    if (repeat_ < 1) repeat_ = 1;
    if (warmup_ < 0) warmup_ = 0;
  }

  bool enabled() const { return !file_.empty(); }
  int repeat() const { return repeat_; }
  int warmup() const { return warmup_; }

  /// Runs the bench body: `--warmup` discarded passes, then `--repeat`
  /// timed passes whose wall seconds become the report's samples. Metrics
  /// are cleared before every pass so the report carries one copy (from
  /// the last pass). Without --json the body runs exactly once, untimed.
  template <typename Fn>
  void run_timed(Fn&& body) {
    if (!enabled()) {
      body();
      return;
    }
    for (int i = 0; i < warmup_; ++i) {
      metrics_.clear();
      body();
    }
    samples_.clear();
    samples_.reserve(static_cast<std::size_t>(repeat_));
    for (int i = 0; i < repeat_; ++i) {
      metrics_.clear();
      const auto t0 = std::chrono::steady_clock::now();
      body();
      apply_deliberate_delay();
      samples_.push_back(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
    }
  }

  /// Records one scalar under a stable name (insertion order preserved).
  void set(const std::string& metric, double value) {
    if (enabled()) metrics_.emplace_back(metric, value);
  }

  /// Writes the report when --json was given. Returns 0 so benches can
  /// `return report.write();` from main.
  int write() const {
    if (!enabled()) return 0;
    if (file_ == "-") {
      emit(std::cout);
      std::cout << "\n";
      return 0;
    }
    std::ofstream out(file_);
    if (!out) throw ConfigError("cannot open " + file_);
    emit(out);
    out << "\n";
    std::cout << "\nJSON written to " << file_ << "\n";
    return 0;
  }

 private:
  /// CI gate rehearsal hook: a measured slowdown inside the timed region.
  void apply_deliberate_delay() const {
    const char* ms = std::getenv("HOLMES_BENCH_DELIBERATE_DELAY_MS");
    if (ms == nullptr || *ms == '\0') return;
    const int delay = std::atoi(ms);
    if (delay > 0) std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }

  void emit(std::ostream& out) const {
    // A bench that never called run_timed still gets one wall sample:
    // construction to write().
    std::vector<double> samples = samples_;
    if (samples.empty()) {
      samples.push_back(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_)
                            .count());
    }
    const SampleStats wall = summarize_samples(std::move(samples));
    out << "{\"schema\":\"holmes.bench.v1\",\"bench\":\"" << json_escape(name_)
        << "\",\"repeat\":" << repeat_ << ",\"warmup\":" << warmup_
        << ",\"wall_s\":{\"min\":" << json_number(wall.min)
        << ",\"median\":" << json_number(wall.median)
        << ",\"max\":" << json_number(wall.max)
        << ",\"spread\":" << json_number(wall.spread())
        << "},\"metrics\":[";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"name\":\"" << json_escape(metrics_[i].first)
          << "\",\"value\":" << json_number(metrics_[i].second) << "}";
    }
    out << "]}";
  }

  std::string name_;
  std::string file_;  ///< empty: disabled
  int repeat_ = 1;
  int warmup_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::vector<double> samples_;  ///< wall seconds per timed pass
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace holmes::bench
