/// Fault-injection recovery bench: how much of the throughput lost to a
/// straggler of increasing severity the measured-speed re-partition wins
/// back on the Hybrid environment — static plan vs elastic re-plan, the
/// experiment `holmes_cli inject` runs, swept across severities.
///
/// Metrics per severity: faulted/static throughput, re-planned throughput,
/// and the recovery ratio (share of lost throughput regained; the repo's
/// acceptance bar for 2.0x is >= 0.5). Emits holmes.bench.v1 so the CI
/// perf trajectory tracks recovery quality over time.

#include <iostream>

#include "bench_json.h"
#include "core/experiment.h"
#include "core/faults.h"
#include "util/table.h"

using namespace holmes;
using namespace holmes::core;

int main(int argc, char** argv) {
  bench::BenchReport report("faults", argc, argv);
  report.run_timed([&] {
    std::cout << "Fault-injection recovery: group 1 on the Hybrid "
                 "environment (4 nodes);\none RoCE-cluster node slowed by "
                 "increasing factors, re-planned from measured speeds\n\n";

    const net::Topology topo = make_environment(NicEnv::kHybrid, 4);
    int slow_cluster = static_cast<int>(topo.clusters().size()) - 1;
    for (std::size_t c = 0; c < topo.clusters().size(); ++c) {
      if (topo.clusters()[c].nic == net::NicType::kRoCE) {
        slow_cluster = static_cast<int>(c);
        break;
      }
    }

    TextTable table({"Severity", "Fault-free thr", "Faulted thr",
                     "Re-planned thr", "Recovery ratio"});
    for (double severity : {1.2, 1.5, 2.0, 3.0}) {
      FaultPlan plan;
      ComputeStraggler straggler;
      straggler.cluster = slow_cluster;
      straggler.node_in_cluster = 0;
      straggler.slowdown = severity;
      plan.stragglers.push_back(straggler);

      const RecoveryReport recovery = run_fault_injection(topo, plan);

      table.add_row({TextTable::num(severity, 1) + "x",
                     TextTable::num(recovery.fault_free.throughput, 2),
                     TextTable::num(recovery.faulted.throughput, 2),
                     TextTable::num(recovery.replanned.throughput, 2),
                     TextTable::num(recovery.recovery_ratio, 3)});
      const std::string prefix = "severity" + TextTable::num(severity, 1);
      report.set(prefix + "/faulted_throughput",
                 recovery.faulted.throughput);
      report.set(prefix + "/replanned_throughput",
                 recovery.replanned.throughput);
      report.set(prefix + "/recovery_ratio", recovery.recovery_ratio);
    }
    table.print();
    std::cout << "\nThe recovery ratio is (replanned - faulted) / "
                 "(fault_free - faulted) throughput:\nthe share of the "
                 "straggler's damage the measured-speed re-partition "
                 "undoes.\n";
  });
  return report.write();
}
