/// Regenerates paper Table 2 and checks Eq. (5)/(6) against it: the eight
/// parameter groups with their architectures, parallel degrees, batch
/// sizes, computed parameter counts, and FLOPs per iteration.

#include <iostream>
#include <string>

#include "bench_json.h"
#include "model/gpt_zoo.h"
#include "util/table.h"

using namespace holmes;
using namespace holmes::model;

int main(int argc, char** argv) {
  bench::BenchReport report("table2_params", argc, argv);
  report.run_timed([&] {
    std::cout << "Table 2: parameter groups (vocab 51,200; sequence length "
                 "2,048)\n"
              << "P from Eq. (5), F from Eq. (6) at the group's batch size\n\n";

    TextTable table({"Group", "Params (B)", "Eq.5 P (B)", "Heads", "Hidden",
                     "Layers", "TP", "PP", "Micro", "Batch", "Eq.6 F (PFLOP)"});
    for (const ParameterGroup& g : table2_groups()) {
      table.add_row({TextTable::num(static_cast<std::int64_t>(g.id)),
                     TextTable::num(g.nominal_billions, 1),
                     TextTable::num(g.config.parameter_count() / 1e9, 2),
                     TextTable::num(static_cast<std::int64_t>(g.config.heads)),
                     TextTable::num(static_cast<std::int64_t>(g.config.hidden)),
                     TextTable::num(static_cast<std::int64_t>(g.config.layers)),
                     TextTable::num(static_cast<std::int64_t>(g.tensor_parallel)),
                     TextTable::num(static_cast<std::int64_t>(g.pipeline_parallel)),
                     TextTable::num(static_cast<std::int64_t>(g.micro_batch_size)),
                     TextTable::num(g.batch_size),
                     TextTable::num(
                         g.config.flops_per_iteration(g.batch_size) / 1e15, 1)});
      const std::string prefix = "group" + std::to_string(g.id);
      report.set(prefix + "/params_b", g.config.parameter_count() / 1e9);
      report.set(prefix + "/pflops_per_iteration",
                 g.config.flops_per_iteration(g.batch_size) / 1e15);
    }
    table.print();
  });
  return report.write();
}
