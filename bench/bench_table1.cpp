/// Regenerates paper Table 1: TFLOPS / throughput / NIC bandwidth when
/// training the 3.6 B GPT model (parameter group 1) on 4 nodes under the
/// three homogeneous NIC environments.
///
/// Paper reference values: InfiniBand 197 / 99.23, RoCE 160 / 80.54,
/// Ethernet 122 / 61.32 (200 / 200 / 25 Gbps NICs).

#include <iostream>

#include "bench_json.h"
#include "core/experiment.h"
#include "util/table.h"

using namespace holmes;
using namespace holmes::core;

int main(int argc, char** argv) {
  bench::BenchReport report("table1", argc, argv);
  report.run_timed([&] {
    std::cout << "Table 1: GPT-3.6B (group 1) on 4 nodes x 8 A100s, per NIC "
                 "environment\n"
              << "(paper: IB 197/99.23, RoCE 160/80.54, Ethernet 122/61.32)\n\n";

    // Tables 1 and 3 predate the self-adapting partition (paper §4.1), so the
    // uniform-partition Holmes configuration is what their rows measure.
    const FrameworkConfig framework =
        FrameworkConfig::holmes().without_self_adapting();

    TextTable table({"NIC Env", "TFLOPS", "Throughput", "Bandwidth (Gbps)"});
    for (NicEnv env :
         {NicEnv::kInfiniBand, NicEnv::kRoCE, NicEnv::kEthernet}) {
      const net::Topology topo = make_environment(env, 4);
      const IterationMetrics m = run_experiment(framework, topo, 1);
      const net::FabricKind fabric = topo.fabric_between(0, 8);
      table.add_row({to_string(env), TextTable::num(m.tflops_per_gpu, 0),
                     TextTable::num(m.throughput, 2),
                     TextTable::num(topo.catalog().spec(fabric).bandwidth_gbps, 0)});
      report.set("tflops/" + to_string(env), m.tflops_per_gpu);
      report.set("throughput/" + to_string(env), m.throughput);
    }
    table.print();
  });
  return report.write();
}
