/// Ablation beyond the paper's figures: pipeline schedule comparison.
/// The paper states its experiments use the interleaved schedule (§4.1);
/// this bench quantifies what each schedule buys on homogeneous vs hybrid
/// clusters, including the interleaved schedule's hidden cost in the
/// heterogeneous setting — every extra model chunk multiplies the
/// cross-cluster activation traffic on the slow Ethernet link.

#include <iostream>
#include <vector>

#include "bench_json.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace holmes;
using namespace holmes::core;

int main(int argc, char** argv) {
  bench::BenchReport report("schedules", argc, argv);
  report.run_timed([&] {
    std::cout << "Schedule ablation: group 1, 4 nodes (TFLOPS). Interleaved-k "
                 "= k model chunks per device.\n\n";

    const FrameworkConfig base = FrameworkConfig::holmes();
    struct Variant {
      std::string label;
      FrameworkConfig framework;
    };
    const std::vector<Variant> variants = {
        {"GPipe", base.with_schedule(SchedulePolicy::kGPipe)},
        {"1F1B (PipeDream-Flush)", base},
        {"Interleaved-2", base.with_schedule(SchedulePolicy::kInterleaved, 2)},
        {"Interleaved-3", base.with_schedule(SchedulePolicy::kInterleaved, 3)},
    };
    const std::vector<NicEnv> envs = {NicEnv::kInfiniBand, NicEnv::kRoCE,
                                      NicEnv::kHybrid};

    std::vector<double> tflops(variants.size() * envs.size());
    ThreadPool pool;
    pool.parallel_for(tflops.size(), [&](std::size_t i) {
      const std::size_t vi = i / envs.size();
      const std::size_t ei = i % envs.size();
      tflops[i] = run_experiment(variants[vi].framework, envs[ei], 4, 1)
                      .tflops_per_gpu;
    });

    TextTable table({"Schedule", "InfiniBand", "RoCE", "Hybrid"});
    for (std::size_t vi = 0; vi < variants.size(); ++vi) {
      std::vector<std::string> row = {variants[vi].label};
      for (std::size_t ei = 0; ei < envs.size(); ++ei) {
        row.push_back(TextTable::num(tflops[vi * envs.size() + ei], 0));
        report.set(variants[vi].label + "/" + to_string(envs[ei]) + "/tflops",
                   tflops[vi * envs.size() + ei]);
      }
      table.add_row(std::move(row));
    }
    table.print();

    std::cout << "\nNote: interleaving shrinks the pipeline bubble on "
                 "homogeneous RDMA clusters but multiplies cross-cluster\n"
                 "activation traffic on the hybrid environment — chunk counts "
                 "beyond 2 lose more to the Ethernet link than the\n"
                 "smaller bubble saves.\n";
  });
  return report.write();
}
