/// Micro-benchmarks of the static verifier: the graph-family structural
/// lints and the execution-family conservation lints over synthetic grid
/// graphs, plus the plan-family pass over a resolved training plan. These
/// bound what the debug-mode pre-flight and `holmes_cli lint` cost — the
/// passes are meant to be cheap enough to run on every CI simulation.

#include <benchmark/benchmark.h>

#include "micro_bench_json.h"

#include <string>
#include <vector>

#include "core/plan.h"
#include "core/preflight.h"
#include "model/gpt_zoo.h"
#include "net/topology.h"
#include "sim/executor.h"
#include "sim/task_graph.h"
#include "verify/flow_lints.h"
#include "verify/graph_lints.h"
#include "verify/plan_lints.h"

using namespace holmes;
using namespace holmes::sim;

namespace {

/// A pipeline-ish graph: `width` serial resources, each running `depth`
/// compute tasks, with transfers handing off between neighbours (same shape
/// as micro_obs's grid so the numbers are comparable).
TaskGraph make_grid_graph(int width, int depth,
                          std::vector<ResourceId>* compute = nullptr) {
  TaskGraph g;
  std::vector<ResourceId> gpus;
  std::vector<ResourceId> tx;
  std::vector<ResourceId> rx;
  for (int i = 0; i < width; ++i) {
    gpus.push_back(g.add_resource("gpu" + std::to_string(i)));
    tx.push_back(g.add_resource("gpu" + std::to_string(i) + ".tx"));
    rx.push_back(g.add_resource("gpu" + std::to_string(i) + ".rx"));
  }
  const ChannelId pp = g.channel("pp");
  std::vector<TaskId> prev(static_cast<std::size_t>(width), kInvalidTask);
  for (int d = 0; d < depth; ++d) {
    for (int i = 0; i < width; ++i) {
      const TaskId c = g.add_compute(gpus[i], 1e-5, "fwd", 1);
      if (prev[i] != kInvalidTask) g.add_dep(c, prev[i]);
      prev[i] = c;
      if (i + 1 < width) {
        const TaskId t =
            g.add_transfer(tx[i], rx[i + 1], 1 << 16, 25e9, 5e-6, "p2p", 3, pp);
        g.add_dep(t, c);
        prev[i + 1] = t;
      }
    }
  }
  if (compute != nullptr) *compute = gpus;
  return g;
}

}  // namespace

static void BM_LintGraph(benchmark::State& state) {
  std::vector<ResourceId> gpus;
  const TaskGraph g =
      make_grid_graph(static_cast<int>(state.range(0)), 64, &gpus);
  verify::GraphLintOptions options;
  options.serial_programs = gpus;
  for (auto _ : state) {
    const verify::LintReport report = verify::lint_graph(g, options);
    benchmark::DoNotOptimize(report.ok());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.task_count()));
}
BENCHMARK(BM_LintGraph)->Arg(4)->Arg(16)->Arg(64);

static void BM_LintExecution(benchmark::State& state) {
  std::vector<ResourceId> gpus;
  const TaskGraph g =
      make_grid_graph(static_cast<int>(state.range(0)), 64, &gpus);
  const SimResult result = TaskGraphExecutor{}.run(g);
  verify::GraphLintOptions options;
  options.serial_programs = gpus;
  for (auto _ : state) {
    const verify::LintReport report = verify::lint_execution(g, result, options);
    benchmark::DoNotOptimize(report.ok());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.task_count()));
}
BENCHMARK(BM_LintExecution)->Arg(4)->Arg(16)->Arg(64);

static void BM_LintPlan(benchmark::State& state) {
  const net::Topology topo = net::Topology::hybrid_two_clusters(2);
  const core::TrainingPlan plan =
      core::Planner(core::FrameworkConfig::holmes())
          .plan(topo, model::parameter_group(1));
  for (auto _ : state) {
    const verify::LintReport report = core::lint_training_plan(topo, plan);
    benchmark::DoNotOptimize(report.ok());
  }
}
BENCHMARK(BM_LintPlan);

static void BM_PreflightFullRunAndAudit(benchmark::State& state) {
  // The whole debug-mode story: simulate, then audit graph + timings.
  const net::Topology topo = net::Topology::hybrid_two_clusters(1);
  const core::TrainingPlan plan =
      core::Planner(core::FrameworkConfig::holmes())
          .plan(topo, model::parameter_group(1));
  core::SimArtifacts artifacts;
  core::TrainingSimulator{}.run(topo, plan, 2, {}, nullptr, &artifacts);
  for (auto _ : state) {
    const verify::LintReport report = core::lint_artifacts(artifacts);
    benchmark::DoNotOptimize(report.ok());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(artifacts.graph.task_count()));
}
BENCHMARK(BM_PreflightFullRunAndAudit);

static void BM_FlowAnalysis(benchmark::State& state) {
  // The simulation-free HV4xx bounds: longest chain, resource loads, and
  // the in-flight watermark sweep — the pruning pass a strategy search
  // would run per candidate, so it must stay near-linear in tasks.
  const TaskGraph g = make_grid_graph(static_cast<int>(state.range(0)), 64);
  for (auto _ : state) {
    const verify::FlowAnalysis flow = verify::analyze_flow(g);
    benchmark::DoNotOptimize(flow.makespan_bound_s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.task_count()));
}
BENCHMARK(BM_FlowAnalysis)->Arg(4)->Arg(16)->Arg(64);

static void BM_LintFlow(benchmark::State& state) {
  const TaskGraph g = make_grid_graph(static_cast<int>(state.range(0)), 64);
  const SimResult result = TaskGraphExecutor{}.run(g);
  for (auto _ : state) {
    const verify::LintReport report = verify::lint_flow(g, result);
    benchmark::DoNotOptimize(report.ok());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.task_count()));
}
BENCHMARK(BM_LintFlow)->Arg(4)->Arg(16)->Arg(64);

static void BM_DeterminismCheck(benchmark::State& state) {
  // One disjoint tie-permutation re-run + bitwise compare per iteration —
  // what each of `holmes_cli check`'s N permutations costs at graph level.
  const TaskGraph g = make_grid_graph(static_cast<int>(state.range(0)), 64);
  verify::DeterminismCheckOptions options;
  options.permutations = 1;
  for (auto _ : state) {
    const verify::LintReport report = verify::check_determinism(g, options);
    benchmark::DoNotOptimize(report.ok());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.task_count()));
}
BENCHMARK(BM_DeterminismCheck)->Arg(4)->Arg(16);

int main(int argc, char** argv) {
  return holmes::bench::micro_bench_main("micro_verify", argc, argv);
}
