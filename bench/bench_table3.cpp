/// Regenerates paper Table 3: parameter groups 1-4 across the four NIC
/// environments and 4 / 6 / 8 node scales (Hybrid = two equal clusters,
/// IB + RoCE). Scenario simulations fan out over a thread pool.

#include <iostream>
#include <vector>

#include "bench_json.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace holmes;
using namespace holmes::core;

int main(int argc, char** argv) {
  bench::BenchReport report("table3", argc, argv);
  report.run_timed([&] {
    std::cout << "Table 3: groups 1-4 x {InfiniBand, RoCE, Ethernet, Hybrid} x "
                 "{4, 6, 8} nodes (TFLOPS / throughput)\n\n";

    const std::vector<int> groups = {1, 2, 3, 4};
    const std::vector<NicEnv> envs = {NicEnv::kInfiniBand, NicEnv::kRoCE,
                                      NicEnv::kEthernet, NicEnv::kHybrid};
    const std::vector<int> node_counts = {4, 6, 8};
    // Table 3 rows predate the self-adapting partition (paper §4.1).
    const FrameworkConfig framework =
        FrameworkConfig::holmes().without_self_adapting();

    struct Cell {
      double tflops = 0;
      double throughput = 0;
    };
    std::vector<Cell> cells(groups.size() * envs.size() * node_counts.size());
    ThreadPool pool;
    pool.parallel_for(cells.size(), [&](std::size_t i) {
      const std::size_t gi = i / (envs.size() * node_counts.size());
      const std::size_t ei = i / node_counts.size() % envs.size();
      const std::size_t ni = i % node_counts.size();
      const IterationMetrics m = run_experiment(framework, envs[ei],
                                                node_counts[ni], groups[gi]);
      cells[i] = {m.tflops_per_gpu, m.throughput};
    });

    TextTable table({"Group", "NIC Env", "4N TFLOPS", "4N Thr", "6N TFLOPS",
                     "6N Thr", "8N TFLOPS", "8N Thr"});
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      for (std::size_t ei = 0; ei < envs.size(); ++ei) {
        std::vector<std::string> row = {
            TextTable::num(static_cast<std::int64_t>(groups[gi])),
            to_string(envs[ei])};
        for (std::size_t ni = 0; ni < node_counts.size(); ++ni) {
          const Cell& c =
              cells[(gi * envs.size() + ei) * node_counts.size() + ni];
          row.push_back(TextTable::num(c.tflops, 0));
          row.push_back(TextTable::num(c.throughput, 2));
          const std::string prefix = "group" + std::to_string(groups[gi]) + "/" +
                                     to_string(envs[ei]) + "/" +
                                     std::to_string(node_counts[ni]) + "n";
          report.set(prefix + "/tflops", c.tflops);
          report.set(prefix + "/throughput", c.throughput);
        }
        table.add_row(std::move(row));
      }
    }
    table.print();
  });
  return report.write();
}
