/// Ablation beyond the paper: gradient synchronization precision. Megatron
/// DDP accumulates and all-reduces main gradients in fp32 (the calibrated
/// default, 4 B/param); synchronizing in bf16 halves the wire volume at a
/// numerical-accuracy cost outside this simulator's scope. The saving is
/// largest exactly where Holmes matters least — slow fabrics — quantifying
/// how much of the heterogeneity problem cheaper gradients could absorb.

#include <iostream>
#include <vector>

#include "bench_json.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace holmes;
using namespace holmes::core;

int main(int argc, char** argv) {
  bench::BenchReport report("precision", argc, argv);
  report.run_timed([&] {
    std::cout << "Gradient-precision ablation: group 1, 4 nodes, Holmes "
                 "(TFLOPS)\n\n";

    const std::vector<NicEnv> envs = {NicEnv::kInfiniBand, NicEnv::kRoCE,
                                      NicEnv::kEthernet, NicEnv::kHybrid};
    struct Variant {
      const char* label;
      int grad_bytes;
    };
    const std::vector<Variant> variants = {{"fp32 gradients (default)", 4},
                                           {"bf16 gradients", 2}};

    std::vector<double> tflops(envs.size() * variants.size());
    ThreadPool pool;
    pool.parallel_for(tflops.size(), [&](std::size_t i) {
      const std::size_t ei = i / variants.size();
      const std::size_t vi = i % variants.size();
      CostModel cost;
      cost.grad_bytes_per_param = variants[vi].grad_bytes;
      tflops[i] = run_experiment(FrameworkConfig::holmes(), envs[ei], 4, 1, cost)
                      .tflops_per_gpu;
    });

    TextTable table({"NIC Env", "fp32 grads", "bf16 grads", "Gain %"});
    for (std::size_t ei = 0; ei < envs.size(); ++ei) {
      const double fp32 = tflops[ei * variants.size()];
      const double bf16 = tflops[ei * variants.size() + 1];
      table.add_row({to_string(envs[ei]), TextTable::num(fp32, 0),
                     TextTable::num(bf16, 0),
                     TextTable::num((bf16 / fp32 - 1.0) * 100.0, 1)});
      report.set(to_string(envs[ei]) + "/fp32_tflops", fp32);
      report.set(to_string(envs[ei]) + "/bf16_tflops", bf16);
    }
    table.print();
    std::cout << "\nHalving gradient bytes helps slow fabrics most, but even "
                 "bf16 Ethernet stays far below RDMA —\nprecision cannot "
                 "substitute for NIC-aware scheduling.\n";
  });
  return report.write();
}
