/// Regenerates paper Figure 7: speedup ratio of Holmes over the mainstream
/// frameworks on the large models (groups 7 and 8, tensor parallel 8) as
/// the node count grows. Paper shape: Holmes' advantage widens with scale.
///
/// Group 7 (p=2) needs N divisible by 16 and runs on the two-cluster
/// Hybrid environment (4/6/8 nodes). Group 8 (p=3) needs N divisible by 24
/// and a number of clusters matching its pipeline depth, so it runs on
/// three equal clusters (RoCE + RoCE + IB; 6 and 12 nodes) — the same
/// environment as Table 4.

#include <iostream>
#include <vector>

#include "bench_json.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace holmes;
using namespace holmes::core;

int main(int argc, char** argv) {
  bench::BenchReport report("fig7_speedup", argc, argv);
  report.run_timed([&] {
    std::cout << "Figure 7: Holmes speedup over mainstream frameworks, groups "
                 "7-8 on Hybrid clusters\n\n";

    const std::vector<FrameworkConfig> baselines = {
        FrameworkConfig::megatron_lm(),
        FrameworkConfig::megatron_deepspeed(),
        FrameworkConfig::megatron_llama(),
    };
    auto three_clusters = [](int nodes_each) {
      return net::Topology({
          net::ClusterSpec{"roce-a", nodes_each, 8, net::NicType::kRoCE},
          net::ClusterSpec{"roce-b", nodes_each, 8, net::NicType::kRoCE},
          net::ClusterSpec{"ib", nodes_each, 8, net::NicType::kInfiniBand},
      });
    };
    struct Scenario {
      int group;
      int nodes;
      net::Topology topo;
    };
    std::vector<Scenario> scenarios;
    for (int nodes : {4, 6, 8}) {
      scenarios.push_back({7, nodes, make_environment(NicEnv::kHybrid, nodes)});
    }
    for (int nodes : {6, 12}) {
      scenarios.push_back({8, nodes, three_clusters(nodes / 3)});
    }

    struct Cell {
      double holmes_thr = 0;
      std::vector<double> baseline_thr;
    };
    std::vector<Cell> cells(scenarios.size());
    ThreadPool pool;
    pool.parallel_for(cells.size(), [&](std::size_t i) {
      const Scenario& s = scenarios[i];
      cells[i].holmes_thr =
          run_experiment(FrameworkConfig::holmes(), s.topo, s.group).throughput;
      for (const FrameworkConfig& fw : baselines) {
        cells[i].baseline_thr.push_back(
            run_experiment(fw, s.topo, s.group).throughput);
      }
    });

    TextTable table({"Group", "Nodes", "Holmes thr", "vs Megatron-LM",
                     "vs Megatron-DeepSpeed", "vs Megatron-LLaMA"});
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const Cell& c = cells[i];
      std::vector<std::string> row = {
          TextTable::num(static_cast<std::int64_t>(scenarios[i].group)),
          TextTable::num(static_cast<std::int64_t>(scenarios[i].nodes)),
          TextTable::num(c.holmes_thr, 2)};
      const std::string prefix = "group" +
                                 std::to_string(scenarios[i].group) + "/" +
                                 std::to_string(scenarios[i].nodes) + "n";
      report.set(prefix + "/holmes_throughput", c.holmes_thr);
      for (std::size_t b = 0; b < c.baseline_thr.size(); ++b) {
        row.push_back(TextTable::num(c.holmes_thr / c.baseline_thr[b], 2) + "x");
        report.set(prefix + "/speedup_vs_" + baselines[b].name,
                   c.holmes_thr / c.baseline_thr[b]);
      }
      table.add_row(std::move(row));
    }
    table.print();
  });
  return report.write();
}
