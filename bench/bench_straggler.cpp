/// Extension bench (the paper's stated future work): sensitivity of each
/// framework to a straggler node, and how far a speed-aware re-partition
/// (the self-adapting machinery driven by *measured* stage speeds instead
/// of NIC classes) recovers the loss.

#include <iostream>
#include <vector>

#include "bench_json.h"
#include "core/experiment.h"
#include "pipeline/partition.h"
#include "util/table.h"

using namespace holmes;
using namespace holmes::core;

int main(int argc, char** argv) {
  bench::BenchReport report("straggler", argc, argv);
  report.run_timed([&] {
    std::cout << "Straggler study: group 1 on the Hybrid environment (4 "
                 "nodes); one RoCE-cluster node throttled\n\n";

    const net::Topology topo = make_environment(NicEnv::kHybrid, 4);
    const model::ParameterGroup& workload = model::parameter_group(1);

    TextTable table({"Slowdown", "Holmes thr", "Megatron-LM thr",
                     "Holmes + measured re-partition"});
    for (double slowdown : {1.0, 1.2, 1.5, 2.0}) {
      Perturbations perturb;
      // Node 2 (first RoCE node, ranks 16-23) is throttled.
      for (int r = 16; r < 24; ++r) perturb.device_slowdown[r] = slowdown;

      const TrainingPlan holmes_plan = Planner(FrameworkConfig::holmes())
                                           .plan(topo, workload);
      const double holmes =
          TrainingSimulator{}.run(topo, holmes_plan, 3, perturb).throughput;

      const TrainingPlan lm_plan = Planner(FrameworkConfig::megatron_lm())
                                       .plan(topo, workload);
      const double lm =
          TrainingSimulator{}.run(topo, lm_plan, 3, perturb).throughput;

      // Speed-aware re-partition: stage 1 hosts the throttled node, so its
      // measured speed shrinks by the straggler factor (half its devices run
      // slow; the stage paces at the slowest device).
      TrainingPlan tuned = holmes_plan;
      const pipeline::StageSpeeds nic_speeds;
      std::vector<double> measured = {
          nic_speeds.of(holmes_plan.stage_nics[0]),
          nic_speeds.of(holmes_plan.stage_nics[1]) / slowdown};
      tuned.partition = pipeline::proportional_partition(
          workload.config.layers, measured, 1.0);
      const double repartitioned =
          TrainingSimulator{}.run(topo, tuned, 3, perturb).throughput;

      table.add_row({TextTable::num(slowdown, 1) + "x",
                     TextTable::num(holmes, 2), TextTable::num(lm, 2),
                     TextTable::num(repartitioned, 2)});
      const std::string prefix = "slowdown" + TextTable::num(slowdown, 1);
      report.set(prefix + "/holmes_throughput", holmes);
      report.set(prefix + "/megatron_lm_throughput", lm);
      report.set(prefix + "/repartitioned_throughput", repartitioned);
    }
    table.print();
    std::cout << "\nA measured-speed re-partition moves layers off the "
                 "throttled stage, recovering much of the loss —\nthe "
                 "self-adapting mechanism generalizes beyond NIC classes.\n";
  });
  return report.write();
}
