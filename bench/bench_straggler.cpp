/// Extension bench (the paper's stated future work): sensitivity of each
/// framework to a straggler node, and how far a speed-aware re-partition
/// (the self-adapting machinery driven by *measured* stage speeds instead
/// of NIC classes) recovers the loss.
///
/// The straggler is expressed as a `holmes.fault_plan.v1` document scoped
/// to the first node of the RoCE cluster — resolved from the topology, not
/// hard-coded ranks — and lowered through core/faults.h, so the bench
/// exercises exactly the machinery `holmes_cli inject` drives. The 2.0x
/// plan is printed at the end, ready to pipe into `holmes_cli inject`.

#include <iostream>
#include <vector>

#include "bench_json.h"
#include "core/experiment.h"
#include "core/faults.h"
#include "pipeline/partition.h"
#include "util/table.h"

using namespace holmes;
using namespace holmes::core;

int main(int argc, char** argv) {
  bench::BenchReport report("straggler", argc, argv);
  report.run_timed([&] {
    std::cout << "Straggler study: group 1 on the Hybrid environment (4 "
                 "nodes); one RoCE-cluster node throttled\n\n";

    const net::Topology topo = make_environment(NicEnv::kHybrid, 4);
    const model::ParameterGroup& workload = model::parameter_group(1);

    // Scope the fault to the first node of the RoCE cluster, wherever the
    // topology puts it (falling back to the last cluster if no RoCE one
    // exists, so the bench survives environment changes).
    int slow_cluster = static_cast<int>(topo.clusters().size()) - 1;
    for (std::size_t c = 0; c < topo.clusters().size(); ++c) {
      if (topo.clusters()[c].nic == net::NicType::kRoCE) {
        slow_cluster = static_cast<int>(c);
        break;
      }
    }
    const auto make_plan = [&](double slowdown) {
      FaultPlan plan;
      ComputeStraggler straggler;
      straggler.cluster = slow_cluster;
      straggler.node_in_cluster = 0;
      straggler.slowdown = slowdown;
      plan.stragglers.push_back(straggler);
      return plan;
    };

    TextTable table({"Slowdown", "Holmes thr", "Megatron-LM thr",
                     "Holmes + measured re-partition"});
    for (double slowdown : {1.0, 1.2, 1.5, 2.0}) {
      const Perturbations perturb = lower_fault_plan(make_plan(slowdown), topo);

      const TrainingPlan holmes_plan = Planner(FrameworkConfig::holmes())
                                           .plan(topo, workload);
      const double holmes =
          TrainingSimulator{}.run(topo, holmes_plan, 3, perturb).throughput;

      const TrainingPlan lm_plan = Planner(FrameworkConfig::megatron_lm())
                                       .plan(topo, workload);
      const double lm =
          TrainingSimulator{}.run(topo, lm_plan, 3, perturb).throughput;

      // Speed-aware re-partition: the slow cluster's stage hosts the
      // throttled node, so its measured speed shrinks by the straggler
      // factor (the stage paces at the slowest device).
      TrainingPlan tuned = holmes_plan;
      const pipeline::StageSpeeds nic_speeds;
      std::vector<double> measured;
      measured.reserve(holmes_plan.stage_nics.size());
      for (std::size_t s = 0; s < holmes_plan.stage_nics.size(); ++s) {
        const double speed = nic_speeds.of(holmes_plan.stage_nics[s]);
        measured.push_back(static_cast<int>(s) == slow_cluster
                               ? speed / slowdown
                               : speed);
      }
      tuned.partition = pipeline::proportional_partition(
          workload.config.layers, measured, 1.0);
      const double repartitioned =
          TrainingSimulator{}.run(topo, tuned, 3, perturb).throughput;

      table.add_row({TextTable::num(slowdown, 1) + "x",
                     TextTable::num(holmes, 2), TextTable::num(lm, 2),
                     TextTable::num(repartitioned, 2)});
      const std::string prefix = "slowdown" + TextTable::num(slowdown, 1);
      report.set(prefix + "/holmes_throughput", holmes);
      report.set(prefix + "/megatron_lm_throughput", lm);
      report.set(prefix + "/repartitioned_throughput", repartitioned);
    }
    table.print();
    std::cout << "\nA measured-speed re-partition moves layers off the "
                 "throttled stage, recovering much of the loss —\nthe "
                 "self-adapting mechanism generalizes beyond NIC classes.\n"
              << "\nEquivalent holmes.fault_plan.v1 (2.0x), for `holmes_cli "
                 "inject --fault-plan`:\n"
              << fault_plan_json(make_plan(2.0)) << "\n";
  });
  return report.write();
}
