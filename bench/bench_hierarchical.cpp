/// Ablation beyond the paper: flat ring vs hierarchical (node-aware)
/// all-reduce. The flat ring crosses node boundaries through one NIC pair
/// and matches the paper's measured testbed behaviour (the calibration
/// baseline); the hierarchical algorithm drives every GPU's NIC during the
/// inter-node phase, quantifying what NCCL-style multi-NIC rings would buy
/// each fabric.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_json.h"
#include "comm/communicator.h"
#include "core/experiment.h"
#include "sim/executor.h"
#include "util/table.h"

using namespace holmes;

namespace {

SimTime simulate(const net::Topology& topo, Bytes bytes, bool hierarchical) {
  std::vector<int> ranks;
  for (int r = 0; r < topo.world_size(); ++r) ranks.push_back(r);
  const comm::Communicator comm(topo, ranks);
  sim::TaskGraph graph;
  const net::PortMap ports(topo, graph);
  const comm::TaskHandles done =
      hierarchical ? comm.lower_hierarchical_all_reduce(graph, ports, bytes, {})
                   : comm.lower_all_reduce(graph, ports, bytes, {});
  const auto result = sim::TaskGraphExecutor{}.run(graph);
  SimTime latest = 0;
  for (sim::TaskId t : done) latest = std::max(latest, result.timing(t).finish);
  return latest;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("hierarchical", argc, argv);
  report.run_timed([&] {
    std::cout << "All-reduce algorithm comparison: 4 nodes x 8 GPUs, 4 GiB "
                 "gradient buffer\n\n";

    const Bytes bytes = 4LL * 1024 * 1024 * 1024;
    TextTable table({"Fabric", "Flat ring (s)", "Hierarchical (s)", "Speedup"});
    for (net::NicType nic : {net::NicType::kInfiniBand, net::NicType::kRoCE,
                             net::NicType::kEthernet}) {
      const net::Topology topo = net::Topology::homogeneous(4, nic);
      const SimTime flat = simulate(topo, bytes, false);
      const SimTime hier = simulate(topo, bytes, true);
      table.add_row({net::to_string(nic), TextTable::num(flat, 3),
                     TextTable::num(hier, 3), TextTable::num(flat / hier, 2) + "x"});
      report.set(net::to_string(nic) + "/flat_ring_s", flat);
      report.set(net::to_string(nic) + "/hierarchical_s", hier);
    }
    table.print();

    std::cout << "\nRDMA fabrics gain ~L x from driving all per-GPU NICs; "
                 "Ethernet gains less per ring because its NICs\nare "
                 "node-shared (net::PortMap) — the 8 shard rings contend for "
                 "4 port pairs per node.\n";
  });
  return report.write();
}
