/// Timeline extraction at production scale: the GPT-3-scale synthetic
/// stress graph (~110k tasks, bench/synthetic_graph.h) is simulated once,
/// then obs::extract_timeline pulls the full time-resolved telemetry —
/// every per-resource occupancy and queue series, per-channel byte curves,
/// class saturation intervals and the top-talker ranking — serially and
/// with a 4-thread slot fan.
///
/// The acceptance bar from the observability roadmap: extraction should
/// cost under 5% of the simulation wall it describes, so `holmes_cli
/// timeline` can be bolted onto any run without changing what is being
/// measured. The denominator is the self-profile's simulation leg — graph
/// build + event loop + accounting (the accounting pass is shared: its
/// aggregates are handed to extraction via TimelineOptions, exactly as the
/// CLI reuses them). The bench records every leg, the serial ratio as
/// `extract_vs_sim_ratio`, and the budget verdict as `extract_within_5pct`;
/// CI and `holmes_cli bench` track them like any other holmes.bench.v1
/// metric. Breakpoint totals anchor the extraction's structure: they are
/// exact integers that move only when the engine's schedule (or the
/// extractor) changes.

#include <chrono>
#include <cstddef>
#include <iostream>

#include "bench_json.h"
#include "obs/accounting.h"
#include "obs/timeline.h"
#include "sim/executor.h"
#include "synthetic_graph.h"
#include "util/units.h"

using namespace holmes;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::size_t total_breakpoints(const obs::Timeline& t) {
  std::size_t total = 0;
  for (const obs::ResourceTimeline& res : t.resources) {
    total += res.busy.breakpoints() + res.queue.breakpoints();
  }
  for (const obs::ChannelTimeline& chan : t.channels) {
    total += chan.in_flight.breakpoints() + chan.cumulative.breakpoints();
  }
  for (const obs::ClassTimeline& cls : t.classes) {
    total += cls.busy_ports.breakpoints();
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("timeline", argc, argv);
  report.run_timed([&] {
    const auto build_t0 = std::chrono::steady_clock::now();
    sim::TaskGraph graph;
    const std::size_t tasks =
        bench::build_training_graph(graph, bench::gpt3_scale_spec());
    const double build_s = seconds_since(build_t0);

    const auto sim_t0 = std::chrono::steady_clock::now();
    const sim::SimResult result = sim::TaskGraphExecutor{}.run(graph);
    const double sim_s = seconds_since(sim_t0);

    const obs::Window window{0.0, result.makespan()};
    const auto acct_t0 = std::chrono::steady_clock::now();
    const std::vector<obs::ResourceAccount> accounts =
        obs::account_resources(graph, result, window);
    const std::vector<obs::ChannelAccount> channels =
        obs::account_channels(graph, result, window);
    const double acct_s = seconds_since(acct_t0);

    obs::TimelineOptions options;
    options.resource_accounts = &accounts;
    options.channel_accounts = &channels;
    const auto serial_t0 = std::chrono::steady_clock::now();
    const obs::Timeline serial =
        obs::extract_timeline(graph, result, options);
    const double serial_s = seconds_since(serial_t0);

    obs::TimelineOptions fanned_options = options;
    fanned_options.threads = 4;
    const auto fanned_t0 = std::chrono::steady_clock::now();
    const obs::Timeline fanned =
        obs::extract_timeline(graph, result, fanned_options);
    const double fanned_s = seconds_since(fanned_t0);

    const double sim_leg_s = build_s + sim_s + acct_s;
    const double ratio = sim_leg_s > 0 ? serial_s / sim_leg_s : 0.0;
    const bool within_budget = ratio < 0.05;

    report.set("task_count", static_cast<double>(tasks));
    report.set("makespan_s", result.makespan());
    report.set("resources", static_cast<double>(serial.resources.size()));
    report.set("channels", static_cast<double>(serial.channels.size()));
    report.set("classes", static_cast<double>(serial.classes.size()));
    report.set("top_talkers", static_cast<double>(serial.top_talkers.size()));
    report.set("breakpoints", static_cast<double>(total_breakpoints(serial)));
    report.set("graph_build_wall_s", build_s);
    report.set("sim_wall_s", sim_s);
    report.set("accounting_wall_s", acct_s);
    report.set("sim_leg_wall_s", sim_leg_s);
    report.set("extract_serial_wall_s", serial_s);
    report.set("extract_threaded_wall_s", fanned_s);
    report.set("extract_vs_sim_ratio", ratio);
    report.set("extract_within_5pct", within_budget ? 1.0 : 0.0);

    std::cout << "timeline extraction: " << tasks << " tasks, makespan "
              << format_time(result.makespan()) << "\n"
              << "  graph build       " << format_time(build_s) << "\n"
              << "  sim (event loop)  " << format_time(sim_s) << "\n"
              << "  accounting        " << format_time(acct_s) << "\n"
              << "  extract (serial)  " << format_time(serial_s) << "  ("
              << static_cast<int>(ratio * 1000) / 10.0
              << "% of the sim leg)\n"
              << "  extract (4 thr)   " << format_time(fanned_s) << "\n"
              << "  " << serial.resources.size() << " resources, "
              << serial.channels.size() << " channels, "
              << total_breakpoints(serial) << " breakpoints\n"
              << "  budget (<5% of sim): "
              << (within_budget ? "within" : "EXCEEDED") << "\n";
    // The fan must reproduce the serial extraction exactly; a cheap
    // structural fingerprint guards against a racy slot.
    if (total_breakpoints(fanned) != total_breakpoints(serial)) {
      std::cerr << "FATAL: threaded extraction diverged from serial\n";
      std::exit(1);
    }
  });
  return report.write();
}
