/// Crossover analysis beyond the paper: how fast must the RDMA fabric be
/// for Holmes' cross-cluster scheduling to pay off?
///
/// Sweep 1 degrades the hybrid clusters' RDMA NICs from 200 Gbps down to
/// 25 Gbps (the Ethernet rate) and tracks Holmes-on-hybrid against the
/// pure-Ethernet environment: the advantage shrinks as RDMA loses its
/// edge, locating the break-even NIC speed.
///
/// Sweep 2 asks the converse: how fast would *Ethernet* have to be for the
/// NIC-oblivious fallback (Megatron-LM) to catch Holmes on the same
/// clusters — i.e. the interconnect investment that buying better Ethernet
/// would substitute for.

#include <iostream>
#include <vector>

#include "bench_json.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace holmes;
using namespace holmes::core;

namespace {

net::Topology hybrid_with_rdma_gbps(double gbps) {
  return net::Topology({
      net::ClusterSpec{"ib", 2, 8, net::NicType::kInfiniBand, gbps},
      net::ClusterSpec{"roce", 2, 8, net::NicType::kRoCE, gbps},
  });
}

net::Topology hybrid_with_eth_gbps(double gbps) {
  net::FabricCatalog catalog;
  catalog.spec(net::FabricKind::kEthernet).bandwidth_gbps = gbps;
  return net::Topology(
      {
          net::ClusterSpec{"ib", 2, 8, net::NicType::kInfiniBand},
          net::ClusterSpec{"roce", 2, 8, net::NicType::kRoCE},
      },
      catalog);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("crossover", argc, argv);
  report.run_timed([&] {
    std::cout << "Crossover sweep 1: degrade the clusters' RDMA NICs (group 1, "
                 "4 nodes)\n\n";
    const double ethernet_baseline =
        run_experiment(FrameworkConfig::holmes(), NicEnv::kEthernet, 4, 1)
            .throughput;
    report.set("rdma_sweep/ethernet_baseline_throughput", ethernet_baseline);

    const std::vector<double> rdma_speeds = {200, 100, 50, 25};
    std::vector<double> hybrid_thr(rdma_speeds.size());
    ThreadPool pool;
    pool.parallel_for(rdma_speeds.size(), [&](std::size_t i) {
      hybrid_thr[i] = run_experiment(FrameworkConfig::holmes(),
                                     hybrid_with_rdma_gbps(rdma_speeds[i]), 1)
                          .throughput;
    });

    TextTable sweep1({"RDMA Gbps", "Holmes hybrid thr", "vs pure Ethernet"});
    for (std::size_t i = 0; i < rdma_speeds.size(); ++i) {
      sweep1.add_row({TextTable::num(rdma_speeds[i], 0),
                      TextTable::num(hybrid_thr[i], 2),
                      TextTable::num(hybrid_thr[i] / ethernet_baseline, 2) + "x"});
      report.set("rdma_sweep/" + TextTable::num(rdma_speeds[i], 0) +
                     "gbps/holmes_throughput",
                 hybrid_thr[i]);
    }
    sweep1.print();

    std::cout << "\nCrossover sweep 2: upgrade Ethernet under the fallback "
                 "baseline (group 1, 4 nodes)\n\n";
    const std::vector<double> eth_speeds = {25, 50, 100, 200, 400};
    std::vector<double> lm_thr(eth_speeds.size());
    std::vector<double> holmes_thr(eth_speeds.size());
    pool.parallel_for(eth_speeds.size(), [&](std::size_t i) {
      const net::Topology topo = hybrid_with_eth_gbps(eth_speeds[i]);
      lm_thr[i] =
          run_experiment(FrameworkConfig::megatron_lm(), topo, 1).throughput;
      holmes_thr[i] =
          run_experiment(FrameworkConfig::holmes(), topo, 1).throughput;
    });

    TextTable sweep2({"Ethernet Gbps", "Megatron-LM thr", "Holmes thr",
                      "Holmes advantage"});
    for (std::size_t i = 0; i < eth_speeds.size(); ++i) {
      sweep2.add_row({TextTable::num(eth_speeds[i], 0),
                      TextTable::num(lm_thr[i], 2),
                      TextTable::num(holmes_thr[i], 2),
                      TextTable::num(holmes_thr[i] / lm_thr[i], 2) + "x"});
      const std::string prefix =
          "eth_sweep/" + TextTable::num(eth_speeds[i], 0) + "gbps";
      report.set(prefix + "/megatron_lm_throughput", lm_thr[i]);
      report.set(prefix + "/holmes_throughput", holmes_thr[i]);
    }
    sweep2.print();

    std::cout << "\nNIC-aware scheduling is worth roughly a 4-8x Ethernet "
                 "upgrade on this workload — the fallback\nbaseline needs "
                 "hundreds of Gbps of commodity bandwidth to match Holmes on "
                 "stock 25 GbE.\n";
  });
  return report.write();
}
