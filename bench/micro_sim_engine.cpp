/// Micro-benchmarks of the discrete-event substrate: event queue churn and
/// task-graph execution throughput (the quantity that bounds how many
/// training scenarios per second the experiment benches can evaluate).

#include <benchmark/benchmark.h>

#include "micro_bench_json.h"

#include "sim/executor.h"
#include "sim/simulator.h"

using namespace holmes;
using namespace holmes::sim;

static void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  const auto events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator s;
    for (int i = 0; i < events; ++i) {
      s.after(static_cast<SimTime>(i % 97) * 1e-6, [] {});
    }
    benchmark::DoNotOptimize(s.run());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueScheduleAndRun)->Arg(1 << 10)->Arg(1 << 14);

static void BM_TaskGraphChain(benchmark::State& state) {
  const auto tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    TaskGraph g;
    const ResourceId r = g.add_resource("r");
    TaskId prev = kInvalidTask;
    for (int i = 0; i < tasks; ++i) {
      const TaskId t = g.add_compute(r, 1e-6);
      if (prev != kInvalidTask) g.add_dep(t, prev);
      prev = t;
    }
    benchmark::DoNotOptimize(TaskGraphExecutor{}.run(g).makespan());
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_TaskGraphChain)->Arg(1 << 12)->Arg(1 << 16);

static void BM_TaskGraphWide(benchmark::State& state) {
  // Fan-out/fan-in: many independent tasks on many resources joining once.
  const auto width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    TaskGraph g;
    const TaskId join = g.add_noop("join");
    for (int i = 0; i < width; ++i) {
      const ResourceId r = g.add_resource("r");
      const TaskId t = g.add_compute(r, 1e-6);
      g.add_dep(join, t);
    }
    benchmark::DoNotOptimize(TaskGraphExecutor{}.run(g).makespan());
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_TaskGraphWide)->Arg(1 << 10)->Arg(1 << 14);

int main(int argc, char** argv) {
  return holmes::bench::micro_bench_main("micro_sim_engine", argc, argv);
}
