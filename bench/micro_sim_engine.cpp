/// Micro-benchmarks of the discrete-event substrate: event queue churn,
/// task-graph construction cost, and task-graph *execution* throughput —
/// the quantity that bounds how many training scenarios per second the
/// experiment benches and the autotune sweep can evaluate. The executor
/// benches build their graph once outside the timed region so the measured
/// loop is exactly the DES hot path (ready queue + placement + dependent
/// release); the Build benches track construction cost separately.

#include <benchmark/benchmark.h>

#include "micro_bench_json.h"
#include "synthetic_graph.h"

#include "sim/executor.h"
#include "sim/simulator.h"

using namespace holmes;
using namespace holmes::sim;

static void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  const auto events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator s;
    for (int i = 0; i < events; ++i) {
      s.after(static_cast<SimTime>(i % 97) * 1e-6, [] {});
    }
    benchmark::DoNotOptimize(s.run());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueScheduleAndRun)->Arg(1 << 10)->Arg(1 << 14);

namespace {

TaskGraph make_chain(int tasks) {
  TaskGraph g;
  const ResourceId r = g.add_resource("r");
  TaskId prev = kInvalidTask;
  for (int i = 0; i < tasks; ++i) {
    const TaskId t = g.add_compute(r, 1e-6);
    if (prev != kInvalidTask) g.add_dep(t, prev);
    prev = t;
  }
  return g;
}

TaskGraph make_wide(int width) {
  // Fan-out/fan-in: many independent tasks on many resources joining once.
  TaskGraph g;
  const TaskId join = g.add_noop("join");
  for (int i = 0; i < width; ++i) {
    const ResourceId r = g.add_resource("r");
    const TaskId t = g.add_compute(r, 1e-6);
    g.add_dep(join, t);
  }
  return g;
}

}  // namespace

static void BM_TaskGraphChainBuild(benchmark::State& state) {
  const auto tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    TaskGraph g = make_chain(tasks);
    benchmark::DoNotOptimize(g.task_count());
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_TaskGraphChainBuild)->Arg(1 << 16);

static void BM_TaskGraphChain(benchmark::State& state) {
  const auto tasks = static_cast<int>(state.range(0));
  const TaskGraph g = make_chain(tasks);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TaskGraphExecutor{}.run(g).makespan());
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_TaskGraphChain)->Arg(1 << 12)->Arg(1 << 16);

static void BM_TaskGraphWide(benchmark::State& state) {
  const auto width = static_cast<int>(state.range(0));
  const TaskGraph g = make_wide(width);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TaskGraphExecutor{}.run(g).makespan());
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_TaskGraphWide)->Arg(1 << 10)->Arg(1 << 14);

static void BM_Gpt3IterationGraph(benchmark::State& state) {
  // The ROADMAP item-3 headline: a ~110k-task GPT-3-scale training
  // iteration (16 pipeline stages x 8 DP replicas x 192 micro-batches with
  // per-stage ring reduce-scatter) must simulate in single-digit
  // milliseconds. Built once; the timed region is executor-only.
  TaskGraph g;
  const std::size_t tasks =
      holmes::bench::build_training_graph(g, holmes::bench::gpt3_scale_spec());
  for (auto _ : state) {
    benchmark::DoNotOptimize(TaskGraphExecutor{}.run(g).makespan());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tasks));
  state.counters["tasks"] = benchmark::Counter(static_cast<double>(tasks));
}
BENCHMARK(BM_Gpt3IterationGraph);

static void BM_Gpt3IterationGraphBuild(benchmark::State& state) {
  for (auto _ : state) {
    TaskGraph g;
    benchmark::DoNotOptimize(
        holmes::bench::build_training_graph(g, holmes::bench::gpt3_scale_spec()));
  }
}
BENCHMARK(BM_Gpt3IterationGraphBuild);

int main(int argc, char** argv) {
  return holmes::bench::micro_bench_main("micro_sim_engine", argc, argv);
}
