/// Regenerates paper Figure 5: Self-Adapting vs Uniform pipeline partition
/// on the hybrid environment (groups 1-4, 4 nodes, alpha = 1.05), plus an
/// alpha sensitivity sweep the paper leaves implicit.

#include <iostream>
#include <vector>

#include "bench_json.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace holmes;
using namespace holmes::core;

int main(int argc, char** argv) {
  bench::BenchReport report("fig5_partition", argc, argv);
  report.run_timed([&] {
    std::cout << "Figure 5: pipeline partition strategies on the Hybrid "
                 "environment, 4 nodes (alpha = 1.05)\n\n";

    const std::vector<int> groups = {1, 2, 3, 4};
    const FrameworkConfig self_adapting = FrameworkConfig::holmes();
    const FrameworkConfig uniform = self_adapting.without_self_adapting();

    struct Cell {
      double uni_tflops, uni_thr, sa_tflops, sa_thr;
    };
    std::vector<Cell> cells(groups.size());
    ThreadPool pool;
    pool.parallel_for(cells.size(), [&](std::size_t i) {
      const IterationMetrics u =
          run_experiment(uniform, NicEnv::kHybrid, 4, groups[i]);
      const IterationMetrics s =
          run_experiment(self_adapting, NicEnv::kHybrid, 4, groups[i]);
      cells[i] = {u.tflops_per_gpu, u.throughput, s.tflops_per_gpu,
                  s.throughput};
    });

    TextTable table({"Group", "Uniform TFLOPS", "Uniform Thr",
                     "Self-Adapting TFLOPS", "Self-Adapting Thr", "Gain %"});
    for (std::size_t i = 0; i < groups.size(); ++i) {
      const Cell& c = cells[i];
      table.add_row({TextTable::num(static_cast<std::int64_t>(groups[i])),
                     TextTable::num(c.uni_tflops, 0), TextTable::num(c.uni_thr, 2),
                     TextTable::num(c.sa_tflops, 0), TextTable::num(c.sa_thr, 2),
                     TextTable::num((c.sa_thr / c.uni_thr - 1.0) * 100.0, 1)});
      const std::string prefix = "group" + std::to_string(groups[i]);
      report.set(prefix + "/uniform_throughput", c.uni_thr);
      report.set(prefix + "/self_adapting_throughput", c.sa_thr);
    }
    table.print();

    // Extension: alpha sensitivity for group 1 (ablation of Eq. 2's
    // hyper-parameter; the paper fixes alpha = 1.05 without showing a sweep).
    std::cout << "\nAlpha sweep (group 1, Hybrid, 4 nodes):\n\n";
    TextTable sweep({"alpha", "TFLOPS", "Throughput", "Layers (IB/RoCE)"});
    for (double alpha : {0.9, 1.0, 1.05, 1.1, 1.2, 1.4}) {
      FrameworkConfig fw = FrameworkConfig::holmes();
      fw.alpha = alpha;
      const net::Topology topo = make_environment(NicEnv::kHybrid, 4);
      const TrainingPlan plan =
          Planner(fw).plan(topo, model::parameter_group(1));
      const IterationMetrics m = TrainingSimulator{}.run(topo, plan);
      sweep.add_row({TextTable::num(alpha, 2), TextTable::num(m.tflops_per_gpu, 0),
                     TextTable::num(m.throughput, 2),
                     std::to_string(plan.partition[0]) + "/" +
                         std::to_string(plan.partition[1])});
      report.set("alpha_sweep/group1/alpha" + TextTable::num(alpha, 2) +
                     "/throughput",
                 m.throughput);
    }
    sweep.print();
  });
  return report.write();
}
