/// Regenerates paper Figure 6: Holmes vs Megatron-LM, Megatron-DeepSpeed
/// and Megatron-LLaMA on parameter group 3, 8 nodes (4 RoCE + 4 IB).
/// Paper shape: Holmes clearly first; Megatron-LLaMA ahead of the other
/// two thanks to its Overlapped Distributed Optimizer.

#include <iostream>
#include <vector>

#include "bench_json.h"
#include "core/experiment.h"
#include "util/table.h"

using namespace holmes;
using namespace holmes::core;

int main(int argc, char** argv) {
  bench::BenchReport report("fig6_frameworks", argc, argv);
  report.run_timed([&] {
    std::cout << "Figure 6: frameworks on group 3, 8 nodes (4 RoCE + 4 IB)\n"
              << "(paper: LM ~132, DeepSpeed ~133, LLaMA ~150, Holmes ~183)\n\n";

    const std::vector<FrameworkConfig> frameworks = {
        FrameworkConfig::megatron_lm(),
        FrameworkConfig::megatron_deepspeed(),
        FrameworkConfig::megatron_llama(),
        FrameworkConfig::holmes(),
    };

    TextTable table({"Framework", "TFLOPS", "Throughput", "vs Megatron-LM"});
    double lm_throughput = 0;
    for (const FrameworkConfig& fw : frameworks) {
      const IterationMetrics m = run_experiment(fw, NicEnv::kHybrid, 8, 3);
      if (lm_throughput == 0) lm_throughput = m.throughput;
      table.add_row({fw.name, TextTable::num(m.tflops_per_gpu, 0),
                     TextTable::num(m.throughput, 2),
                     TextTable::num(m.throughput / lm_throughput, 2) + "x"});
      report.set(fw.name + "/tflops", m.tflops_per_gpu);
      report.set(fw.name + "/throughput", m.throughput);
    }
    table.print();
  });
  return report.write();
}
