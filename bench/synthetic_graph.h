#pragma once

/// \file synthetic_graph.h
/// Deterministic synthetic training-iteration graphs for engine stress
/// benchmarks.
///
/// build_training_graph emits the same dependency shapes TrainingSimulator
/// lowers real plans into — per-device 1F1B pipeline compute chains,
/// stage-to-stage activation/gradient transfers, and a ring reduce-scatter
/// per pipeline stage — but parameterized directly in stages, replicas and
/// micro-batches so benches can dial the task count without planning a
/// model. The default gpt3_scale_spec() yields a ~110k-task iteration
/// (16 stages x 8 DP replicas x 192 micro-batches — GPT-3's batch of 1536
/// split 8 ways — with 8-chunk rings), the ROADMAP item-3 "100k+-task
/// iteration graph" target shape.

#include <string>

#include "sim/task_graph.h"

namespace holmes::bench {

struct SyntheticGraphSpec {
  int stages = 4;         ///< pipeline stages
  int replicas = 2;       ///< data-parallel replicas (ring size)
  int micro_batches = 8;  ///< micro-batches pipelined per iteration
  int ring_chunks = 4;    ///< reduce-scatter chunks per ring step pair
  holmes::SimTime compute_s = 1e-6;   ///< per-micro-batch compute
  holmes::SimTime transfer_s = 2e-7;  ///< serialization per hop (bytes/bw)
  holmes::SimTime latency_s = 1e-7;   ///< propagation latency per hop
};

/// The GPT-3-scale stress shape: ~110k tasks over 128 devices.
inline SyntheticGraphSpec gpt3_scale_spec() {
  SyntheticGraphSpec spec;
  spec.stages = 16;
  spec.replicas = 8;
  spec.micro_batches = 192;
  spec.ring_chunks = 8;
  return spec;
}

/// Builds one training iteration into `g` and returns the task count.
/// Deterministic for a fixed spec (resource and task ids depend only on
/// the spec), so repeated builds produce structurally identical graphs.
inline std::size_t build_training_graph(sim::TaskGraph& g,
                                        const SyntheticGraphSpec& spec) {
  using sim::ResourceId;
  using sim::TaskId;
  const int S = spec.stages;
  const int R = spec.replicas;
  const int M = spec.micro_batches;

  // One compute engine plus one TX/RX port pair per (stage, replica) device.
  std::vector<ResourceId> compute(static_cast<std::size_t>(S * R));
  std::vector<ResourceId> tx(compute.size());
  std::vector<ResourceId> rx(compute.size());
  for (int s = 0; s < S; ++s) {
    for (int r = 0; r < R; ++r) {
      const auto d = static_cast<std::size_t>(s * R + r);
      std::string suffix = "s";
      suffix += std::to_string(s);
      suffix += "r";
      suffix += std::to_string(r);
      compute[d] = g.add_resource("gpu/" + suffix);
      tx[d] = g.add_resource("tx/" + suffix);
      rx[d] = g.add_resource("rx/" + suffix);
    }
  }
  const double bandwidth = 1e9;
  const auto bytes =
      static_cast<holmes::Bytes>(spec.transfer_s * bandwidth);

  // Forward then backward sweeps: compute per (stage, replica, micro) with
  // activation/gradient hops between neighboring stages. prev_on_device
  // serializes each device's own work (the 1F1B compute chain).
  std::vector<TaskId> prev_on_device(compute.size(), sim::kInvalidTask);
  // fwd_out[d * M + m]: last forward task of micro m on device d (the
  // backward sweep of micro m on the same device depends on it).
  std::vector<TaskId> fwd_out(compute.size() * static_cast<std::size_t>(M),
                              sim::kInvalidTask);
  std::size_t tasks = 0;

  const auto add_stage_compute = [&](int s, int r, TaskId carried) {
    const auto d = static_cast<std::size_t>(s * R + r);
    const TaskId t = g.add_compute(compute[d], spec.compute_s);
    if (carried != sim::kInvalidTask) g.add_dep(t, carried);
    if (prev_on_device[d] != sim::kInvalidTask) {
      g.add_dep(t, prev_on_device[d]);
    }
    prev_on_device[d] = t;
    ++tasks;
    return t;
  };
  const auto add_hop = [&](int from_s, int to_s, int r, TaskId carried) {
    const auto src = static_cast<std::size_t>(from_s * R + r);
    const auto dst = static_cast<std::size_t>(to_s * R + r);
    const TaskId t = g.add_transfer(tx[src], rx[dst], bytes, bandwidth,
                                    spec.latency_s);
    g.add_dep(t, carried);
    ++tasks;
    return t;
  };

  for (int r = 0; r < R; ++r) {
    for (int m = 0; m < M; ++m) {
      TaskId carried = sim::kInvalidTask;
      for (int s = 0; s < S; ++s) {
        carried = add_stage_compute(s, r, carried);
        fwd_out[static_cast<std::size_t>(s * R + r) * M + m] = carried;
        if (s + 1 < S) carried = add_hop(s, s + 1, r, carried);
      }
    }
    for (int m = 0; m < M; ++m) {
      TaskId carried = sim::kInvalidTask;
      for (int s = S - 1; s >= 0; --s) {
        const TaskId bwd = add_stage_compute(s, r, carried);
        g.add_dep(bwd, fwd_out[static_cast<std::size_t>(s * R + r) * M + m]);
        carried = bwd;
        if (s > 0) carried = add_hop(s, s - 1, r, carried);
      }
    }
  }

  // Per-stage gradient ring reduce-scatter + all-gather across replicas:
  // 2*(R-1) ring steps of `ring_chunks` chunk transfers each, gated on the
  // stage's last backward compute per replica.
  std::vector<TaskId> ring_prev(static_cast<std::size_t>(R));
  for (int s = 0; s < S; ++s) {
    for (int r = 0; r < R; ++r) {
      ring_prev[static_cast<std::size_t>(r)] =
          prev_on_device[static_cast<std::size_t>(s * R + r)];
    }
    for (int step = 0; step < 2 * (R - 1); ++step) {
      for (int r = 0; r < R; ++r) {
        const int peer = (r + 1) % R;
        const auto src = static_cast<std::size_t>(s * R + r);
        const auto dst = static_cast<std::size_t>(s * R + peer);
        TaskId last = sim::kInvalidTask;
        for (int c = 0; c < spec.ring_chunks; ++c) {
          const TaskId t = g.add_transfer(tx[src], rx[dst], bytes, bandwidth,
                                          spec.latency_s);
          g.add_dep(t, ring_prev[static_cast<std::size_t>(r)]);
          if (step > 0 || c > 0) {
            // Ring steps serialize: each send also waits on the peer's
            // previous receive chain (the classic ring data dependency).
            g.add_dep(t, last != sim::kInvalidTask
                             ? last
                             : ring_prev[static_cast<std::size_t>(peer)]);
          }
          last = t;
          ++tasks;
        }
        ring_prev[static_cast<std::size_t>(r)] = last;
      }
    }
    // Optimizer step per device, gated on the ring.
    for (int r = 0; r < R; ++r) {
      const auto d = static_cast<std::size_t>(s * R + r);
      const TaskId opt = g.add_compute(compute[d], spec.compute_s);
      g.add_dep(opt, ring_prev[static_cast<std::size_t>(r)]);
      g.add_dep(opt, prev_on_device[d]);
      prev_on_device[d] = opt;
      ++tasks;
    }
  }
  return tasks;
}

}  // namespace holmes::bench
