/// Regenerates paper Table 5: component ablation of Holmes on the 7.5 B
/// model (group 3), 8 nodes = 4 RoCE + 4 IB (the Fig. 6 setting).
///
/// Paper reference: Megatron-LM 132/64.86, Holmes 183/89.48,
/// w/o Self-Adapting 179/87.55, w/o Overlapped Optimizer 170/83.15,
/// w/o both 168/82.02.

#include <iostream>
#include <vector>

#include "bench_json.h"
#include "core/experiment.h"
#include "util/table.h"

using namespace holmes;
using namespace holmes::core;

int main(int argc, char** argv) {
  bench::BenchReport report("table5_ablation", argc, argv);
  report.run_timed([&] {
    std::cout << "Table 5: ablation on group 3, 8 nodes (4 RoCE + 4 IB)\n"
              << "(paper: LM 132, Holmes 183, w/o SA 179, w/o Overlap 170, "
                 "w/o both 168)\n\n";

    const FrameworkConfig holmes = FrameworkConfig::holmes();
    struct Row {
      std::string label;
      FrameworkConfig framework;
    };
    const std::vector<Row> rows = {
        {"Megatron-LM", FrameworkConfig::megatron_lm()},
        {"Holmes", holmes},
        {"w/o Self-Adapting-Partition", holmes.without_self_adapting()},
        {"w/o Overlapped Optimizer", holmes.without_overlapped_optimizer()},
        {"w/o Above Two",
         holmes.without_self_adapting().without_overlapped_optimizer()},
    };

    double full_tflops = 0;
    double full_thr = 0;
    TextTable table({"Training Framework", "TFLOPS", "Throughput", "Delta"});
    for (const Row& row : rows) {
      const IterationMetrics m =
          run_experiment(row.framework, NicEnv::kHybrid, 8, 3);
      if (row.label == "Holmes") {
        full_tflops = m.tflops_per_gpu;
        full_thr = m.throughput;
      }
      std::string delta = "-";
      if (full_tflops > 0 && row.label != "Holmes" &&
          row.label != "Megatron-LM") {
        delta = "(" + TextTable::num(m.tflops_per_gpu - full_tflops, 0) + " / " +
                TextTable::num(m.throughput - full_thr, 2) + ")";
      }
      table.add_row({row.label, TextTable::num(m.tflops_per_gpu, 0),
                     TextTable::num(m.throughput, 2), delta});
      report.set(row.label + "/tflops", m.tflops_per_gpu);
      report.set(row.label + "/throughput", m.throughput);
    }
    table.print();
  });
  return report.write();
}
