/// Regenerates paper Figure 3: wall time of the grads-reduce-scatter
/// operation per parameter group under each NIC environment (4 nodes).
/// The paper's qualitative result: IB shortest, then RoCE; Holmes on the
/// hybrid environment keeps reduce-scatter near RDMA speed while pure
/// Ethernet is several times slower.

#include <iostream>
#include <vector>

#include "bench_json.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace holmes;
using namespace holmes::core;

int main(int argc, char** argv) {
  bench::BenchReport report("fig3_reduce_scatter", argc, argv);
  report.run_timed([&] {
    std::cout << "Figure 3: grads-reduce-scatter time per iteration (seconds), "
                 "4 nodes\n\n";

    const std::vector<int> groups = {1, 2, 3, 4};
    const std::vector<NicEnv> envs = {NicEnv::kInfiniBand, NicEnv::kRoCE,
                                      NicEnv::kEthernet, NicEnv::kHybrid};
    // The distributed (reduce-scatter based) optimizer without overlap makes
    // the operation's span directly comparable across environments.
    const FrameworkConfig framework = FrameworkConfig::holmes()
                                          .without_self_adapting()
                                          .without_overlapped_optimizer();

    std::vector<double> spans(groups.size() * envs.size());
    ThreadPool pool;
    pool.parallel_for(spans.size(), [&](std::size_t i) {
      const std::size_t gi = i / envs.size();
      const std::size_t ei = i % envs.size();
      spans[i] = run_experiment(framework, envs[ei], 4, groups[gi])
                     .grad_sync_span;
    });

    const std::vector<std::string> env_names = {"ib", "roce", "eth", "hybrid"};
    TextTable table({"Group", "InfiniBand", "RoCE", "Ethernet", "Hybrid"});
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      std::vector<std::string> row = {
          TextTable::num(static_cast<std::int64_t>(groups[gi]))};
      for (std::size_t ei = 0; ei < envs.size(); ++ei) {
        row.push_back(TextTable::num(spans[gi * envs.size() + ei], 3));
        report.set("grad_sync_s/group" + std::to_string(groups[gi]) + "/" +
                       env_names[ei],
                   spans[gi * envs.size() + ei]);
      }
      table.add_row(std::move(row));
    }
    table.print();
  });
  return report.write();
}
