/// Engine probe: one fixed, fully deterministic simulator run whose
/// self-profile counters become bench metrics.
///
/// Unlike the experiment benches (whose metrics are simulated seconds) and
/// the micro benches (whose metrics are noisy wall times), the probe's
/// counter metrics — tasks created, ready-queue pops, cost-model calls —
/// are exact integers that change only when the engine's structure changes.
/// That makes it the anchor of the `holmes_cli bench` trajectory: a diff on
/// these metrics is a real behavioral change, never noise, so the CI gate
/// can hold them to zero drift while the wall-time metrics get a noise
/// floor. The scenario is the paper's hybrid IB+RoCE environment (2 nodes,
/// parameter group 1, 3 iterations) planned by the Holmes framework.

#include <iostream>

#include "bench_json.h"
#include "core/experiment.h"
#include "core/framework.h"
#include "model/gpt_zoo.h"
#include "obs/self_profile.h"
#include "util/units.h"

using namespace holmes;
using namespace holmes::core;

int main(int argc, char** argv) {
  bench::BenchReport report("engine_probe", argc, argv);
  report.run_timed([&] {
    const net::Topology topo = make_environment(NicEnv::kHybrid, 2);
    const Planner planner(FrameworkConfig::holmes());
    const TrainingPlan plan = planner.plan(topo, model::parameter_group(1));

    obs::SelfProfiler profiler;
    SimArtifacts artifacts;
    const IterationMetrics metrics =
        TrainingSimulator{}.run(topo, plan, 3, {}, nullptr, &artifacts);

    const obs::SelfProfile& profile = *artifacts.self_profile;
    const obs::SelfProfileCounters& c = profile.counters;
    report.set("counters/tasks_created", static_cast<double>(c.tasks_created));
    report.set("counters/compute_tasks", static_cast<double>(c.compute_tasks));
    report.set("counters/transfer_tasks",
               static_cast<double>(c.transfer_tasks));
    report.set("counters/noop_tasks", static_cast<double>(c.noop_tasks));
    report.set("counters/deps_added", static_cast<double>(c.deps_added));
    report.set("counters/resources_created",
               static_cast<double>(c.resources_created));
    report.set("counters/channels_created",
               static_cast<double>(c.channels_created));
    report.set("counters/executor_runs", static_cast<double>(c.executor_runs));
    report.set("counters/ready_pushes", static_cast<double>(c.ready_pushes));
    report.set("counters/ready_pops", static_cast<double>(c.ready_pops));
    report.set("counters/max_ready_queue",
               static_cast<double>(c.max_ready_queue));
    report.set("counters/events_scheduled",
               static_cast<double>(c.events_scheduled));
    report.set("counters/events_fired", static_cast<double>(c.events_fired));
    report.set("counters/cost_model_evals",
               static_cast<double>(c.cost_model_evals));
    report.set("iteration_time_s", metrics.iteration_time);
    report.set("task_count", static_cast<double>(metrics.task_count));

    std::cout << "engine probe: hybrid:2 group 1, " << c.tasks_created
              << " tasks, " << c.ready_pops << " pops, "
              << c.cost_model_evals << " cost-model evals, iteration "
              << format_time(metrics.iteration_time) << "\n";
    obs::print_text(std::cout, profile);
  });
  return report.write();
}
