/// Engine probe: fixed, fully deterministic engine scenarios whose
/// self-profile counters become bench metrics.
///
/// Unlike the experiment benches (whose metrics are simulated seconds) and
/// the micro benches (whose metrics are noisy wall times), the probe's
/// counter metrics — tasks created, ready-queue pops, cost-model calls,
/// arena bytes, memo hits — are exact integers that change only when the
/// engine's structure changes. That makes it the anchor of the
/// `holmes_cli bench` trajectory: a diff on these metrics is a real
/// behavioral change, never noise, so the CI gate can hold them to zero
/// drift while the wall-time metrics get a noise floor.
///
/// Four sections, each under its own SelfProfiler so the counters do not
/// bleed into one another:
///   1. the paper's hybrid IB+RoCE environment (2 nodes, parameter group 1,
///      3 iterations) planned by the Holmes framework — the original probe;
///   2. the GPT-3-scale synthetic stress graph (bench/synthetic_graph.h,
///      ~110k tasks) through the raw TaskGraphExecutor — the ROADMAP item-3
///      "100k+-task iteration" target measured directly;
///   3. arena-backed EventQueue churn (schedule + drain a fixed event
///      population twice across a reset_storage cycle);
///   4. a two-scenario ScenarioRunner fan sharing one SimMemo — one miss,
///      then one structural hit, deterministically.

#include <iostream>

#include "bench_json.h"
#include "core/experiment.h"
#include "core/framework.h"
#include "model/gpt_zoo.h"
#include "obs/self_profile.h"
#include "sim/event_queue.h"
#include "sim/scenario_runner.h"
#include "synthetic_graph.h"
#include "util/units.h"

using namespace holmes;
using namespace holmes::core;

int main(int argc, char** argv) {
  bench::BenchReport report("engine_probe", argc, argv);
  report.run_timed([&] {
    const net::Topology topo = make_environment(NicEnv::kHybrid, 2);
    const Planner planner(FrameworkConfig::holmes());
    const TrainingPlan plan = planner.plan(topo, model::parameter_group(1));

    obs::SelfProfiler profiler;
    SimArtifacts artifacts;
    const IterationMetrics metrics =
        TrainingSimulator{}.run(topo, plan, 3, {}, nullptr, &artifacts);

    const obs::SelfProfile& profile = *artifacts.self_profile;
    const obs::SelfProfileCounters& c = profile.counters;
    report.set("counters/tasks_created", static_cast<double>(c.tasks_created));
    report.set("counters/compute_tasks", static_cast<double>(c.compute_tasks));
    report.set("counters/transfer_tasks",
               static_cast<double>(c.transfer_tasks));
    report.set("counters/noop_tasks", static_cast<double>(c.noop_tasks));
    report.set("counters/deps_added", static_cast<double>(c.deps_added));
    report.set("counters/resources_created",
               static_cast<double>(c.resources_created));
    report.set("counters/channels_created",
               static_cast<double>(c.channels_created));
    report.set("counters/executor_runs", static_cast<double>(c.executor_runs));
    report.set("counters/ready_pushes", static_cast<double>(c.ready_pushes));
    report.set("counters/ready_pops", static_cast<double>(c.ready_pops));
    report.set("counters/max_ready_queue",
               static_cast<double>(c.max_ready_queue));
    report.set("counters/events_scheduled",
               static_cast<double>(c.events_scheduled));
    report.set("counters/events_fired", static_cast<double>(c.events_fired));
    report.set("counters/cost_model_evals",
               static_cast<double>(c.cost_model_evals));
    report.set("iteration_time_s", metrics.iteration_time);
    report.set("task_count", static_cast<double>(metrics.task_count));

    std::cout << "engine probe: hybrid:2 group 1, " << c.tasks_created
              << " tasks, " << c.ready_pops << " pops, "
              << c.cost_model_evals << " cost-model evals, iteration "
              << format_time(metrics.iteration_time) << "\n";
    obs::print_text(std::cout, profile);

    // GPT-3-scale stress: the synthetic ~110k-task iteration graph through
    // the raw executor. Its pop count and peak queue depth anchor the hot
    // path's structure; its makespan anchors the simulated semantics.
    {
      obs::SelfProfiler stress_profiler;
      sim::TaskGraph graph;
      const std::size_t tasks =
          bench::build_training_graph(graph, bench::gpt3_scale_spec());
      const sim::SimResult result = sim::TaskGraphExecutor{}.run(graph);
      const obs::SelfProfileCounters& g =
          stress_profiler.snapshot().counters;
      report.set("gpt3/task_count", static_cast<double>(tasks));
      report.set("gpt3/deps_added", static_cast<double>(g.deps_added));
      report.set("gpt3/ready_pops", static_cast<double>(g.ready_pops));
      report.set("gpt3/max_ready_queue",
                 static_cast<double>(g.max_ready_queue));
      report.set("gpt3/makespan_s", result.makespan());
      std::cout << "gpt3 stress: " << tasks << " tasks, " << g.ready_pops
                << " pops, peak queue " << g.max_ready_queue << ", makespan "
                << format_time(result.makespan()) << "\n";
    }

    // Arena-backed event storage: schedule + drain a fixed event population
    // twice across a reset_storage cycle. Block and byte totals are exact
    // functions of the population and the arena's growth policy.
    {
      obs::SelfProfiler arena_profiler;
      sim::EventQueue queue;
      std::uint64_t fired = 0;
      for (int pass = 0; pass < 2; ++pass) {
        for (int i = 0; i < 4096; ++i) {
          queue.schedule(static_cast<SimTime>(i % 97),
                         [&fired] { ++fired; });
        }
        while (!queue.empty()) queue.pop()();
        queue.reset_storage();
      }
      const obs::SelfProfileCounters& a = arena_profiler.snapshot().counters;
      report.set("event_queue/events_scheduled",
                 static_cast<double>(a.events_scheduled));
      report.set("event_queue/events_fired",
                 static_cast<double>(a.events_fired));
      report.set("event_queue/arena_blocks",
                 static_cast<double>(a.arena_blocks));
      report.set("event_queue/arena_bytes",
                 static_cast<double>(a.arena_bytes));
      std::cout << "event queue: " << a.events_fired << " events fired, "
                << a.arena_blocks << " arena blocks, " << a.arena_bytes
                << " arena bytes\n";
    }

    // Memoized scenario fan: two structurally identical scenarios through a
    // single-worker ScenarioRunner sharing one SimMemo — deterministically
    // one miss (simulated) then one structural hit (cached).
    {
      obs::SelfProfiler memo_profiler;
      sim::SimMemo memo;
      sim::ScenarioRunner runner(1);
      runner.run_all(2, [&](std::size_t) {
        TrainingSimulator simulator;
        simulator.set_memo(&memo);
        simulator.run(topo, plan, 3);
      });
      memo.flush_profile();
      const obs::SelfProfileCounters& m = memo_profiler.snapshot().counters;
      report.set("memo/scenarios_run", static_cast<double>(m.scenarios_run));
      report.set("memo/memo_hits", static_cast<double>(m.memo_hits));
      report.set("memo/memo_misses", static_cast<double>(m.memo_misses));
      std::cout << "scenario fan: " << m.scenarios_run << " scenarios, "
                << m.memo_hits << " memo hits, " << m.memo_misses
                << " misses\n";
    }
  });
  return report.write();
}
