/// Regenerates paper Figure 4 (case 2): throughput of groups 1-4 on 4 nodes
/// when the GPUs form two clusters *without* a shared high-speed switch.
/// "InfiniBand & Ethernet" / "RoCE & Ethernet" are two same-NIC clusters
/// joined only by Ethernet; the homogeneous environments bound the result
/// from above (IB/RoCE) and below (Ethernet).

#include <iostream>
#include <vector>

#include "bench_json.h"
#include "core/experiment.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace holmes;
using namespace holmes::core;

int main(int argc, char** argv) {
  bench::BenchReport report("fig4_case2", argc, argv);
  report.run_timed([&] {
    std::cout << "Figure 4: throughput (samples/s) on 4 nodes, case-2 split "
                 "clusters vs homogeneous bounds\n\n";

    const std::vector<int> groups = {1, 2, 3, 4};
    const std::vector<NicEnv> envs = {NicEnv::kInfiniBand, NicEnv::kRoCE,
                                      NicEnv::kEthernet,   NicEnv::kHybrid,
                                      NicEnv::kSplitIB,    NicEnv::kSplitRoCE};
    const FrameworkConfig framework =
        FrameworkConfig::holmes().without_self_adapting();

    std::vector<double> thr(groups.size() * envs.size());
    ThreadPool pool;
    pool.parallel_for(thr.size(), [&](std::size_t i) {
      const std::size_t gi = i / envs.size();
      const std::size_t ei = i % envs.size();
      thr[i] = run_experiment(framework, envs[ei], 4, groups[gi]).throughput;
    });

    std::vector<std::string> headers = {"Group"};
    for (NicEnv env : envs) headers.push_back(to_string(env));
    TextTable table(std::move(headers));
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      std::vector<std::string> row = {
          TextTable::num(static_cast<std::int64_t>(groups[gi]))};
      for (std::size_t ei = 0; ei < envs.size(); ++ei) {
        row.push_back(TextTable::num(thr[gi * envs.size() + ei], 2));
        report.set("throughput/group" + std::to_string(groups[gi]) + "/" +
                       to_string(envs[ei]),
                   thr[gi * envs.size() + ei]);
      }
      table.add_row(std::move(row));
    }
    table.print();
  });
  return report.write();
}
