/// Micro-benchmarks of the collective machinery itself: step-program
/// generation, numeric in-process execution, and timed lowering + DES
/// simulation of ring all-reduce at realistic group sizes.

#include <benchmark/benchmark.h>

#include "micro_bench_json.h"

#include <vector>

#include "comm/communicator.h"
#include "comm/inprocess.h"
#include "sim/executor.h"

using namespace holmes;

static void BM_RingAllReduceSteps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(comm::ring_all_reduce_steps(n, 1 << 20));
  }
}
BENCHMARK(BM_RingAllReduceSteps)->Arg(8)->Arg(32)->Arg(128);

static void BM_InProcessAllReduce(benchmark::State& state) {
  const int n = 8;
  const auto elems = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<float>> bufs(n, std::vector<float>(elems, 1.0f));
  for (auto _ : state) {
    comm::BufferSet spans;
    for (auto& b : bufs) spans.emplace_back(b);
    comm::all_reduce_inplace(spans);
    benchmark::DoNotOptimize(bufs[0][0]);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(elems) * n * 4);
}
BENCHMARK(BM_InProcessAllReduce)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

static void BM_LowerAndSimulateAllReduce(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const net::Topology topo =
      net::Topology::homogeneous(n, net::NicType::kInfiniBand, 1);
  std::vector<int> ranks;
  for (int i = 0; i < n; ++i) ranks.push_back(i);
  const comm::Communicator comm(topo, ranks);
  for (auto _ : state) {
    sim::TaskGraph graph;
    const net::PortMap ports(topo, graph);
    comm.lower_all_reduce(graph, ports, 1'000'000'000, {});
    benchmark::DoNotOptimize(sim::TaskGraphExecutor{}.run(graph).makespan());
  }
}
BENCHMARK(BM_LowerAndSimulateAllReduce)->Arg(8)->Arg(16)->Arg(32);

int main(int argc, char** argv) {
  return holmes::bench::micro_bench_main("micro_collectives", argc, argv);
}
